package orchestrator

import (
	"context"
	"errors"
	"math"
	"os"
	"strconv"
	"testing"
	"time"

	"surfos/internal/driver"
	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

// healRig is the standard rig plus a health event bus and a fault model on
// the east-wall surface.
type healRig struct {
	*rig
	events <-chan telemetry.TaskEvent
	east   *hwmgr.Device
	fm     *driver.FaultModel
}

// faultSeed returns the suite's fault-injection seed: SURFOS_FAULT_SEED
// when set (`make test-faults` replays the suite at several), else def.
// The self-healing tests script faults (SetDead, StickElement) rather
// than roll dice, so any seed passes.
func faultSeed(def int64) int64 {
	if s := os.Getenv("SURFOS_FAULT_SEED"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return n
		}
	}
	return def
}

func eastID() string  { return driver.ModelNRSurface + "-" + scene.MountEastWall }
func northID() string { return driver.ModelNRSurface + "-" + scene.MountNorthWall }

func newHealRig(t *testing.T, opts Options, models ...string) *healRig {
	t.Helper()
	r := newRig(t, opts, models...)
	bus := telemetry.NewEventBus()
	ch, cancel := bus.Subscribe(256)
	t.Cleanup(cancel)
	r.hw.SetEventBus(bus)
	r.o.SetEventBus(bus)
	east, err := r.hw.Surface(eastID())
	if err != nil {
		t.Fatal(err)
	}
	fm := driver.NewFaultModel(faultSeed(11))
	east.Drv.SetFaults(fm)
	return &healRig{rig: r, events: ch, east: east, fm: fm}
}

// nextEvent drains the bus until an event in the wanted state arrives.
func nextEvent(t *testing.T, ch <-chan telemetry.TaskEvent, state string) telemetry.TaskEvent {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-ch:
			if ev.State == state {
				return ev
			}
		case <-deadline:
			t.Fatalf("no %q event arrived", state)
		}
	}
}

// Killing one of two surfaces mid-run re-plans every affected task onto the
// survivor within a single reconcile cycle; revival folds the device back
// in. This is the issue's acceptance scenario, deterministic under -race.
func TestSelfHealReplanOnDeviceDeath(t *testing.T) {
	r := newHealRig(t, fastOpts(), driver.ModelNRSurface, driver.ModelNRSurface)
	ctx := context.Background()
	ta, _ := r.o.EnhanceLink(ctx, LinkGoal{Endpoint: "a", Pos: geom.V(6.5, 5.5, 1.2)}, 1)
	tb, _ := r.o.EnhanceLink(ctx, LinkGoal{Endpoint: "b", Pos: geom.V(2.2, 6.5, 1.2)}, 1)
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	ga, _ := r.o.Task(ta.ID)
	if len(ga.Result.Surfaces) != 1 || ga.Result.Surfaces[0] != eastID() {
		t.Fatalf("pre-fault task a on %v, want east wall", ga.Result.Surfaces)
	}

	// The east surface dies; the heartbeat notices and publishes the
	// transition.
	r.fm.SetDead(true)
	r.hw.ProbeAll()
	ev := nextEvent(t, r.events, telemetry.DeviceDead)
	if ev.DeviceID != eastID() {
		t.Fatalf("dead device = %q", ev.DeviceID)
	}

	// One healing step: exactly one reconcile cycle later, every task runs
	// on the survivor.
	if err := r.o.HandleDeviceEvent(ctx, ev); err != nil {
		t.Fatalf("self-heal reconcile: %v", err)
	}
	for _, id := range []int{ta.ID, tb.ID} {
		got, _ := r.o.Task(id)
		if got.State != TaskRunning {
			t.Fatalf("task %d after death: %v (%v)", id, got.State, got.Err)
		}
		if len(got.Result.Surfaces) != 1 || got.Result.Surfaces[0] != northID() {
			t.Fatalf("task %d surfaces after death: %v, want north only", id, got.Result.Surfaces)
		}
	}
	for _, p := range r.o.Plans() {
		for _, id := range p.Surfaces {
			if id == eastID() {
				t.Fatal("dead surface still in a committed plan")
			}
		}
	}
	if rp := nextEvent(t, r.events, telemetry.Replanned); rp.DeviceID != eastID() {
		t.Fatalf("replanned event device = %q", rp.DeviceID)
	}

	// Revival: the device comes back and the next healing step reuses it.
	r.fm.SetDead(false)
	r.hw.ProbeAll()
	rec := nextEvent(t, r.events, telemetry.DeviceRecovered)
	if err := r.o.HandleDeviceEvent(ctx, rec); err != nil {
		t.Fatalf("revival reconcile: %v", err)
	}
	ga, _ = r.o.Task(ta.ID)
	if len(ga.Result.Surfaces) != 1 || ga.Result.Surfaces[0] != eastID() {
		t.Fatalf("task a after revival on %v, want east wall again", ga.Result.Surfaces)
	}
	if h, _ := r.hw.Health(eastID()); h.State != hwmgr.Healthy {
		t.Fatalf("revived device health = %v", h.State)
	}
}

// A device that dies between planning and apply is detected on the apply
// path itself: the plan commit tolerates it, records the failure, and the
// resulting health event drives the usual re-plan.
func TestApplyPathDetectsDeath(t *testing.T) {
	r := newHealRig(t, fastOpts(), driver.ModelNRSurface, driver.ModelNRSurface)
	ctx := context.Background()
	ta, _ := r.o.EnhanceLink(ctx, LinkGoal{Endpoint: "a", Pos: geom.V(6.5, 5.5, 1.2)}, 1)
	r.o.EnhanceLink(ctx, LinkGoal{Endpoint: "b", Pos: geom.V(2.2, 6.5, 1.2)}, 1)

	// Dead before the very first apply: the reconcile must not fail, only
	// record the device's death.
	r.fm.SetDead(true)
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatalf("reconcile with dying device: %v", err)
	}
	if h, _ := r.hw.Health(eastID()); h.State != hwmgr.Dead {
		t.Fatalf("apply path did not mark device dead: %v", h.State)
	}
	ev := nextEvent(t, r.events, telemetry.DeviceDead)
	if err := r.o.HandleDeviceEvent(ctx, ev); err != nil {
		t.Fatal(err)
	}
	ga, _ := r.o.Task(ta.ID)
	if ga.State != TaskRunning || ga.Result.Surfaces[0] != northID() {
		t.Fatalf("task a after apply-path death: %v on %v", ga.State, ga.Result.Surfaces)
	}
}

// With a single surface, death starves the task entirely; recovery
// resubmits it — the full down/up healing cycle.
func TestDeviceRecoveryRequeuesStarvedTasks(t *testing.T) {
	r := newHealRig(t, fastOpts(), driver.ModelNRSurface)
	ctx := context.Background()
	task, _ := r.o.EnhanceLink(ctx, LinkGoal{Endpoint: "a", Pos: bedroomPoint()}, 1)
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}

	r.fm.SetDead(true)
	r.hw.ProbeAll()
	ev := nextEvent(t, r.events, telemetry.DeviceDead)
	if err := r.o.HandleDeviceEvent(ctx, ev); err != nil {
		t.Fatalf("reconcile with no surviving surfaces: %v", err)
	}
	got, _ := r.o.Task(task.ID)
	if got.State != TaskFailed || !errors.Is(got.Err, ErrNoActiveSurfaces) {
		t.Fatalf("starved task: %v (%v)", got.State, got.Err)
	}
	if plans := r.o.Plans(); len(plans) != 0 {
		t.Fatalf("dead deployment still holds plans: %+v", plans)
	}

	r.fm.SetDead(false)
	r.hw.ProbeAll()
	rec := nextEvent(t, r.events, telemetry.DeviceRecovered)
	if err := r.o.HandleDeviceEvent(ctx, rec); err != nil {
		t.Fatal(err)
	}
	got, _ = r.o.Task(task.ID)
	if got.State != TaskRunning {
		t.Fatalf("task after recovery: %v (%v)", got.State, got.Err)
	}
	if len(r.o.Plans()) != 1 {
		t.Fatal("recovered deployment has no plan")
	}
}

// Stuck elements degrade the device without unscheduling it: the projector
// pins the mask, so committed configurations never assign a stuck element a
// non-stuck state, and the re-planned objective is no worse than naively
// keeping the pre-fault configuration on the faulty hardware.
func TestStuckElementDegradation(t *testing.T) {
	r := newHealRig(t, fastOpts(), driver.ModelNRSurface)
	ctx := context.Background()
	pos := bedroomPoint()
	task, _ := r.o.EnhanceLink(ctx, LinkGoal{Endpoint: "a", Pos: pos}, 1)
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	cfgBefore, _, ok := r.east.Drv.Active()
	if !ok {
		t.Fatal("no pre-fault configuration")
	}

	// A swath of actuators freezes at π.
	n := r.east.Drv.Surface().NumElements()
	var stuck []int
	for i := 0; i < n; i += 20 {
		r.fm.StickElement(i, math.Pi)
		stuck = append(stuck, i)
	}
	r.hw.ProbeAll()
	ev := nextEvent(t, r.events, telemetry.DeviceDegraded)
	if ev.DeviceID != eastID() {
		t.Fatalf("degraded device = %q", ev.DeviceID)
	}
	if err := r.o.HandleDeviceEvent(ctx, ev); err != nil {
		t.Fatal(err)
	}

	got, _ := r.o.Task(task.ID)
	if got.State != TaskRunning {
		t.Fatalf("degraded device unscheduled the task: %v (%v)", got.State, got.Err)
	}
	h, _ := r.hw.Health(eastID())
	if h.State != hwmgr.Degraded || len(h.StuckElements) != len(stuck) {
		t.Fatalf("health = %v stuck=%d, want degraded with %d", h.State, len(h.StuckElements), len(stuck))
	}
	// The committed configuration respects the mask exactly.
	cfgAfter, _, ok := r.east.Drv.Active()
	if !ok {
		t.Fatal("no post-fault configuration")
	}
	for _, idx := range stuck {
		if cfgAfter.Values[idx] != math.Pi {
			t.Fatalf("stuck element %d assigned %v", idx, cfgAfter.Values[idx])
		}
	}

	// Re-planning must do at least as well as naively keeping the old
	// configuration on the now-faulty hardware.
	naive := r.east.Drv.Project(cfgBefore) // what the faulty panel would actually realize
	sim, err := rfsim.New(r.apt.Scene, 24e9, r.east.Drv.Surface())
	if err != nil {
		t.Fatal(err)
	}
	sim.ElementEfficiency = r.east.Drv.Spec().ElementEfficiency // match the scheduler's model
	ap, _ := r.o.HW.AP("ap0")
	hn, err := sim.NewTx(ap.Pos).Channel(pos).Eval([]surface.Config{naive})
	if err != nil {
		t.Fatal(err)
	}
	naiveSNR := ap.Budget.SNRdB(hn)
	if got.Result.Metric < naiveSNR-0.5 {
		t.Fatalf("re-planned SNR %.2f dB below naive pre-fault config %.2f dB", got.Result.Metric, naiveSNR)
	}
}

// RunDeviceEvents closes the loop end to end: a heartbeat-detected death
// heals without any explicit orchestration call.
func TestRunDeviceEventsLoop(t *testing.T) {
	r := newHealRig(t, fastOpts(), driver.ModelNRSurface, driver.ModelNRSurface)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go r.o.RunDeviceEvents(ctx, r.events)

	ta, _ := r.o.EnhanceLink(ctx, LinkGoal{Endpoint: "a", Pos: geom.V(6.5, 5.5, 1.2)}, 1)
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	r.fm.SetDead(true)
	r.hw.ProbeAll()

	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := r.o.Task(ta.ID)
		if got.State == TaskRunning && len(got.Result.Surfaces) == 1 &&
			got.Result.Surfaces[0] == northID() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("task never migrated off the dead surface: %v on %v", got.State, got.Result.Surfaces)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
