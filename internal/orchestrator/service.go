package orchestrator

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/optimize"
)

// Band describes the frequency-band scheduling domain a task is planned
// in: the serving access point and the resolved operating frequency. It is
// the slice of scheduler state a service module is allowed to see.
type Band struct {
	AP     *hwmgr.AccessPoint
	FreqHz float64
}

// Evaluator computes a task's headline result for a final phase set.
type Evaluator func(phases [][]float64) *Result

// Service is one pluggable surface-service module (paper §3.2: the growing
// service interface row of Figure 3). The scheduler core is
// service-agnostic: it only ever talks to this interface, so adding a
// service means registering a new implementation — never editing the core.
//
// Split of responsibilities: Validate/Freq/Duration/Target are cheap,
// submission-time policy over the goal; BuildObjective/Weight construct
// the optimization problem at schedule time from the band's shared channel
// state.
type Service interface {
	// Kind is the service's unique identifier.
	Kind() ServiceKind
	// Name is the service's short name for logs, events and the CLI.
	Name() string
	// Validate checks a goal at submission time. Rejections wrap
	// ErrGoalInvalid.
	Validate(o *Orchestrator, goal any) error
	// Freq returns the goal's requested frequency (0 = serving AP's band).
	Freq(goal any) float64
	// Duration returns the goal's requested lifetime (0 = unbounded).
	Duration(goal any) time.Duration
	// Target is the goal's spatial focus, used for SDM surface assignment.
	Target(o *Orchestrator, goal any) geom.Vec3
	// BuildObjective constructs the optimization objective for a task over
	// an engine spec, plus the evaluator that extracts the task's result
	// metrics from a final phase set.
	BuildObjective(ctx context.Context, o *Orchestrator, t *Task, band Band, spec engine.Spec) (optimize.Objective, Evaluator, error)
	// Weight normalizes the task's loss term inside joint weighted sums.
	Weight(o *Orchestrator, t *Task, obj optimize.Objective) float64
}

// EndpointNamer is implemented by goals that serve one named endpoint or
// device; the name keys monitor expectations and lifecycle events.
type EndpointNamer interface {
	EndpointName() string
}

// --- registration table ---

var (
	registryMu sync.RWMutex
	registry   = map[ServiceKind]Service{}
)

// RegisterService adds a service module to the dispatch table. Built-in
// services self-register from init; extensions may register additional
// kinds before submitting tasks for them.
func RegisterService(s Service) error {
	if s == nil {
		return fmt.Errorf("orchestrator: nil service")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if prev, ok := registry[s.Kind()]; ok {
		return fmt.Errorf("orchestrator: service kind %d already registered as %q", uint8(s.Kind()), prev.Name())
	}
	registry[s.Kind()] = s
	return nil
}

// MustRegisterService is RegisterService for init-time wiring.
func MustRegisterService(s Service) {
	if err := RegisterService(s); err != nil {
		panic(err)
	}
}

// RegisteredServices lists the registered kinds in ascending order.
func RegisteredServices() []ServiceKind {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]ServiceKind, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// serviceFor resolves a kind through the table.
func serviceFor(kind ServiceKind) (Service, error) {
	registryMu.RLock()
	s, ok := registry[kind]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w kind %d", ErrUnknownService, uint8(kind))
	}
	return s, nil
}

// serviceName resolves a kind's display name, ok=false when unregistered.
func serviceName(kind ServiceKind) (string, bool) {
	registryMu.RLock()
	s, ok := registry[kind]
	registryMu.RUnlock()
	if !ok {
		return "", false
	}
	return s.Name(), true
}

// KindByName resolves a service name ("link", "sensing", ...) to its kind.
func KindByName(name string) (ServiceKind, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	for k, s := range registry {
		if s.Name() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w name %q", ErrUnknownService, name)
}

// Submit files a task for any registered service kind: the generic entry
// point behind the per-service convenience APIs, and the only one a new
// service module needs. The task is accounted to DefaultTenant; see
// SubmitFor for the multi-tenant entry point.
func (o *Orchestrator) Submit(ctx context.Context, kind ServiceKind, goal any, priority int) (*Task, error) {
	return o.SubmitFor(ctx, DefaultTenant, kind, goal, priority)
}

// service resolves a task's module, tolerating tasks created before the
// registry was consulted.
func (t *Task) service() (Service, error) {
	if t.svc != nil {
		return t.svc, nil
	}
	return serviceFor(t.Kind)
}
