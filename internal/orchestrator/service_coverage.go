package orchestrator

import (
	"context"
	"fmt"
	"time"

	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
)

// CoverageGoal asks for a median SNR across a named region
// (optimize_coverage()).
type CoverageGoal struct {
	Region      string
	MedianSNRdB float64
	FreqHz      float64
	// GridStep is the evaluation grid spacing in meters (default 0.5).
	GridStep float64
}

func init() { MustRegisterService(coverageService{}) }

// coverageService is the region-coverage module: a multi-channel coverage
// objective over the region's evaluation grid. The embedded codec makes
// coverage goals journal-persistable.
type coverageService struct{ jsonGoal[CoverageGoal] }

func (coverageService) Kind() ServiceKind { return ServiceCoverage }
func (coverageService) Name() string      { return "coverage" }

func (coverageService) Validate(o *Orchestrator, goal any) error {
	g, ok := goal.(CoverageGoal)
	if !ok {
		return fmt.Errorf("%w: coverage wants a CoverageGoal, got %T", ErrGoalInvalid, goal)
	}
	if _, err := o.Scene.Region(g.Region); err != nil {
		return fmt.Errorf("%w: %w", ErrGoalInvalid, err)
	}
	return nil
}

func (coverageService) Freq(goal any) float64 {
	g, _ := goal.(CoverageGoal)
	return g.FreqHz
}

func (coverageService) Duration(any) time.Duration { return 0 }

func (coverageService) Target(o *Orchestrator, goal any) geom.Vec3 {
	g, _ := goal.(CoverageGoal)
	if r, err := o.Scene.Region(g.Region); err == nil {
		return r.Box.Center()
	}
	return geom.Vec3{}
}

func (coverageService) BuildObjective(ctx context.Context, o *Orchestrator, t *Task, band Band, spec engine.Spec) (optimize.Objective, Evaluator, error) {
	goal, ok := t.Goal.(CoverageGoal)
	if !ok {
		return nil, nil, fmt.Errorf("%w: task %d: coverage wants a CoverageGoal, got %T", ErrGoalInvalid, t.ID, t.Goal)
	}
	lb := band.AP.Budget
	step := goal.GridStep
	if step == 0 {
		step = o.Opts.GridStep
	}
	reg, err := o.Scene.Region(goal.Region)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrGoalInvalid, err)
	}
	pts := reg.GridPoints(step, scene.EvalHeight)
	if len(pts) == 0 {
		return nil, nil, fmt.Errorf("%w: region %q has no grid points", ErrGoalInvalid, goal.Region)
	}
	chans, err := o.eng.Channels(ctx, spec, band.AP.Pos, pts)
	if err != nil {
		return nil, nil, err
	}
	obj, err := optimize.NewCoverageObjective(chans, lb)
	if err != nil {
		return nil, nil, err
	}
	eval := func(ph [][]float64) *Result {
		cfgs := optimize.PhasesToConfigs(ph)
		snrs := make([]float64, len(chans))
		for i, ch := range chans {
			h, _ := ch.Eval(cfgs)
			snrs[i] = lb.SNRdB(h)
		}
		med := rfsim.Median(snrs)
		return &Result{Metric: med, MetricName: "median_snr_db", Satisfied: med >= goal.MedianSNRdB}
	}
	return obj, eval, nil
}

func (coverageService) Weight(_ *Orchestrator, _ *Task, obj optimize.Objective) float64 {
	return coverageWeight(obj)
}
