package orchestrator

import (
	"context"
	"fmt"
	"time"

	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
)

// LinkGoal asks for connectivity enhancement to one endpoint
// (enhance_link() in the paper's Figure 6).
type LinkGoal struct {
	Endpoint   string
	Pos        geom.Vec3
	MinSNRdB   float64
	MaxLatency time.Duration // application latency budget (informational)
	FreqHz     float64       // 0 = the serving AP's band
}

// EndpointName implements EndpointNamer.
func (g LinkGoal) EndpointName() string { return g.Endpoint }

func init() { MustRegisterService(linkService{}) }

// linkService is the connectivity-enhancement module: a single-channel
// coverage objective focused on the endpoint. The embedded codec makes
// link goals journal-persistable.
type linkService struct{ jsonGoal[LinkGoal] }

func (linkService) Kind() ServiceKind { return ServiceLink }
func (linkService) Name() string      { return "link" }

func (linkService) Validate(o *Orchestrator, goal any) error {
	g, ok := goal.(LinkGoal)
	if !ok {
		return fmt.Errorf("%w: link wants a LinkGoal, got %T", ErrGoalInvalid, goal)
	}
	if g.Endpoint == "" {
		return fmt.Errorf("%w: link goal needs an endpoint", ErrGoalInvalid)
	}
	return nil
}

func (linkService) Freq(goal any) float64 {
	g, _ := goal.(LinkGoal)
	return g.FreqHz
}

func (linkService) Duration(any) time.Duration { return 0 }

func (linkService) Target(_ *Orchestrator, goal any) geom.Vec3 {
	g, _ := goal.(LinkGoal)
	return g.Pos
}

func (linkService) BuildObjective(ctx context.Context, o *Orchestrator, t *Task, band Band, spec engine.Spec) (optimize.Objective, Evaluator, error) {
	goal, ok := t.Goal.(LinkGoal)
	if !ok {
		return nil, nil, fmt.Errorf("%w: task %d: link wants a LinkGoal, got %T", ErrGoalInvalid, t.ID, t.Goal)
	}
	lb := band.AP.Budget
	tc, err := o.eng.Tx(ctx, spec, band.AP.Pos)
	if err != nil {
		return nil, nil, err
	}
	ch := tc.Channel(goal.Pos)
	obj, err := optimize.NewCoverageObjective([]*rfsim.Channel{ch}, lb)
	if err != nil {
		return nil, nil, err
	}
	eval := func(ph [][]float64) *Result {
		h, _ := ch.Eval(optimize.PhasesToConfigs(ph))
		snr := lb.SNRdB(h)
		return &Result{Metric: snr, MetricName: "snr_db", Satisfied: snr >= goal.MinSNRdB}
	}
	return obj, eval, nil
}

func (linkService) Weight(_ *Orchestrator, _ *Task, obj optimize.Objective) float64 {
	return coverageWeight(obj)
}

// coverageWeight normalizes location-count-scaled losses: coverage and
// link losses sum over locations, so a plain joint sum would let large
// regions dominate; dividing by the channel count balances the terms.
func coverageWeight(obj optimize.Objective) float64 {
	if c, ok := obj.(*optimize.CoverageObjective); ok && len(c.Channels) > 0 {
		return 1 / float64(len(c.Channels))
	}
	return 1
}
