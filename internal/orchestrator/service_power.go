package orchestrator

import (
	"context"
	"fmt"
	"time"

	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
)

// PowerGoal asks for wireless power delivery to a device (init_powering()).
type PowerGoal struct {
	Device   string
	Pos      geom.Vec3
	Duration time.Duration
	FreqHz   float64
}

// EndpointName implements EndpointNamer.
func (g PowerGoal) EndpointName() string { return g.Device }

func init() { MustRegisterService(powerService{}) }

// powerService is the wireless-power module: a received-power objective
// focused on the device position. The embedded codec makes power goals
// journal-persistable.
type powerService struct{ jsonGoal[PowerGoal] }

func (powerService) Kind() ServiceKind { return ServicePowering }
func (powerService) Name() string      { return "powering" }

func (powerService) Validate(_ *Orchestrator, goal any) error {
	g, ok := goal.(PowerGoal)
	if !ok {
		return fmt.Errorf("%w: powering wants a PowerGoal, got %T", ErrGoalInvalid, goal)
	}
	if g.Device == "" {
		return fmt.Errorf("%w: power goal needs a device", ErrGoalInvalid)
	}
	return nil
}

func (powerService) Freq(goal any) float64 {
	g, _ := goal.(PowerGoal)
	return g.FreqHz
}

func (powerService) Duration(goal any) time.Duration {
	g, _ := goal.(PowerGoal)
	return g.Duration
}

func (powerService) Target(_ *Orchestrator, goal any) geom.Vec3 {
	g, _ := goal.(PowerGoal)
	return g.Pos
}

func (powerService) BuildObjective(ctx context.Context, o *Orchestrator, t *Task, band Band, spec engine.Spec) (optimize.Objective, Evaluator, error) {
	goal, ok := t.Goal.(PowerGoal)
	if !ok {
		return nil, nil, fmt.Errorf("%w: task %d: powering wants a PowerGoal, got %T", ErrGoalInvalid, t.ID, t.Goal)
	}
	lb := band.AP.Budget
	tc, err := o.eng.Tx(ctx, spec, band.AP.Pos)
	if err != nil {
		return nil, nil, err
	}
	ch := tc.Channel(goal.Pos)
	obj, err := optimize.NewPowerObjective([]*rfsim.Channel{ch})
	if err != nil {
		return nil, nil, err
	}
	eval := func(ph [][]float64) *Result {
		h, _ := ch.Eval(optimize.PhasesToConfigs(ph))
		return &Result{Metric: lb.RxPowerDBm(h), MetricName: "rx_power_dbm", Satisfied: true}
	}
	return obj, eval, nil
}

func (powerService) Weight(*Orchestrator, *Task, optimize.Objective) float64 { return 1 }
