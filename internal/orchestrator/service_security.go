package orchestrator

import (
	"context"
	"fmt"
	"time"

	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/optimize"
)

// SecurityGoal asks for eavesdropper suppression while serving a user.
type SecurityGoal struct {
	Endpoint string
	UserPos  geom.Vec3
	EvePos   geom.Vec3
	FreqHz   float64
}

// EndpointName implements EndpointNamer.
func (g SecurityGoal) EndpointName() string { return g.Endpoint }

func init() { MustRegisterService(securityService{}) }

// securityService is the physical-layer security module: maximize the
// user-eavesdropper SNR gap. The embedded codec makes security goals
// journal-persistable.
type securityService struct{ jsonGoal[SecurityGoal] }

func (securityService) Kind() ServiceKind { return ServiceSecurity }
func (securityService) Name() string      { return "security" }

func (securityService) Validate(_ *Orchestrator, goal any) error {
	g, ok := goal.(SecurityGoal)
	if !ok {
		return fmt.Errorf("%w: security wants a SecurityGoal, got %T", ErrGoalInvalid, goal)
	}
	if g.Endpoint == "" {
		return fmt.Errorf("%w: security goal needs an endpoint", ErrGoalInvalid)
	}
	return nil
}

func (securityService) Freq(goal any) float64 {
	g, _ := goal.(SecurityGoal)
	return g.FreqHz
}

func (securityService) Duration(any) time.Duration { return 0 }

func (securityService) Target(_ *Orchestrator, goal any) geom.Vec3 {
	g, _ := goal.(SecurityGoal)
	return g.UserPos
}

func (securityService) BuildObjective(ctx context.Context, o *Orchestrator, t *Task, band Band, spec engine.Spec) (optimize.Objective, Evaluator, error) {
	goal, ok := t.Goal.(SecurityGoal)
	if !ok {
		return nil, nil, fmt.Errorf("%w: task %d: security wants a SecurityGoal, got %T", ErrGoalInvalid, t.ID, t.Goal)
	}
	lb := band.AP.Budget
	tc, err := o.eng.Tx(ctx, spec, band.AP.Pos)
	if err != nil {
		return nil, nil, err
	}
	user := tc.Channel(goal.UserPos)
	eve := tc.Channel(goal.EvePos)
	obj, err := optimize.NewSecurityObjective(user, eve, 1.0, lb)
	if err != nil {
		return nil, nil, err
	}
	eval := func(ph [][]float64) *Result {
		cfgs := optimize.PhasesToConfigs(ph)
		hu, _ := user.Eval(cfgs)
		he, _ := eve.Eval(cfgs)
		gap := lb.SNRdB(hu) - lb.SNRdB(he)
		return &Result{Metric: gap, MetricName: "user_eve_snr_gap_db", Satisfied: gap > 0}
	}
	return obj, eval, nil
}

func (securityService) Weight(*Orchestrator, *Task, optimize.Objective) float64 { return 1 }
