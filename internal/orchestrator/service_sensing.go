package orchestrator

import (
	"context"
	"fmt"
	"math"
	"time"

	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/sensing"
)

// SensingGoal asks for localization service over a region
// (enable_sensing()).
type SensingGoal struct {
	Region   string
	Type     string // e.g. "tracking"
	Duration time.Duration
	FreqHz   float64
	GridStep float64
}

func init() { MustRegisterService(sensingService{}) }

// sensingService is the localization module: a training-grid localization
// objective evaluated through the band's shared simulator. The embedded
// codec makes sensing goals journal-persistable.
type sensingService struct{ jsonGoal[SensingGoal] }

func (sensingService) Kind() ServiceKind { return ServiceSensing }
func (sensingService) Name() string      { return "sensing" }

func (sensingService) Validate(o *Orchestrator, goal any) error {
	g, ok := goal.(SensingGoal)
	if !ok {
		return fmt.Errorf("%w: sensing wants a SensingGoal, got %T", ErrGoalInvalid, goal)
	}
	if _, err := o.Scene.Region(g.Region); err != nil {
		return fmt.Errorf("%w: %w", ErrGoalInvalid, err)
	}
	return nil
}

func (sensingService) Freq(goal any) float64 {
	g, _ := goal.(SensingGoal)
	return g.FreqHz
}

func (sensingService) Duration(goal any) time.Duration {
	g, _ := goal.(SensingGoal)
	return g.Duration
}

func (sensingService) Target(o *Orchestrator, goal any) geom.Vec3 {
	g, _ := goal.(SensingGoal)
	if r, err := o.Scene.Region(g.Region); err == nil {
		return r.Box.Center()
	}
	return geom.Vec3{}
}

func (sensingService) BuildObjective(ctx context.Context, o *Orchestrator, t *Task, band Band, spec engine.Spec) (optimize.Objective, Evaluator, error) {
	goal, ok := t.Goal.(SensingGoal)
	if !ok {
		return nil, nil, fmt.Errorf("%w: task %d: sensing wants a SensingGoal, got %T", ErrGoalInvalid, t.ID, t.Goal)
	}
	lb := band.AP.Budget
	step := goal.GridStep
	if step == 0 {
		step = o.Opts.SensingGridStep
	}
	reg, err := o.Scene.Region(goal.Region)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrGoalInvalid, err)
	}
	pts := reg.GridPoints(step, scene.EvalHeight)
	if len(pts) == 0 {
		return nil, nil, fmt.Errorf("%w: region %q has no grid points", ErrGoalInvalid, goal.Region)
	}
	sim, err := o.eng.Simulator(spec)
	if err != nil {
		return nil, nil, err
	}
	est, err := estimatorFor(o, band, sim)
	if err != nil {
		return nil, nil, err
	}
	meas := make([]*sensing.Measurement, len(pts))
	if err := o.eng.ForEach(ctx, len(pts), func(i int) {
		meas[i] = est.Measure(pts[i])
	}); err != nil {
		return nil, nil, err
	}
	obj, err := sensing.NewLocalizationObjective(est, meas, 0)
	if err != nil {
		return nil, nil, err
	}
	noiseAmp := sensing.NoiseAmplitude(lb)
	eval := func(ph [][]float64) *Result {
		errM := obj.MeanLocalizationError(ph, noiseAmp, 1)
		return &Result{Metric: errM, MetricName: "mean_loc_err_m", Satisfied: true}
	}
	return obj, eval, nil
}

func (sensingService) Weight(o *Orchestrator, _ *Task, _ optimize.Objective) float64 {
	return o.Opts.SensingWeight
}

// estimatorFor builds the sensing estimator for a band: the AP's antenna
// array observes the band's first sensing-capable surface.
func estimatorFor(o *Orchestrator, band Band, sim *rfsim.Simulator) (*sensing.Estimator, error) {
	n := band.AP.Antennas
	if n <= 0 {
		n = 16
	}
	lambda := em.Wavelength(band.FreqHz)
	ants := sensing.ULA(band.AP.Pos, geom.V(1, 0, 0), n, lambda/2)
	bins := sensing.DefaultBins(o.Opts.SensingBins, 60*math.Pi/180)
	subs := sensing.DefaultSubcarriers(band.FreqHz, o.Opts.SensingBandwidth, o.Opts.SensingSubcarriers)
	est, err := sensing.NewEstimator(sim, 0, ants, bins, subs)
	if err != nil {
		return nil, err
	}
	amp := sensing.NoiseAmplitude(band.AP.Budget)
	est.NoisePower = amp * amp
	return est, nil
}
