package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"surfos/internal/driver"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
)

// echoService is a stub sixth service: it exists to prove the scheduler
// core is service-agnostic — registering and scheduling it requires zero
// edits outside this file.
const echoKind = ServiceKind(42)

type echoGoal struct {
	Endpoint string
	Pos      geom.Vec3
}

func (g echoGoal) EndpointName() string { return g.Endpoint }

type echoService struct {
	weight float64
}

func (echoService) Kind() ServiceKind { return echoKind }
func (echoService) Name() string      { return "echo" }

func (echoService) Validate(_ *Orchestrator, goal any) error {
	g, ok := goal.(echoGoal)
	if !ok {
		return fmt.Errorf("%w: echo wants an echoGoal, got %T", ErrGoalInvalid, goal)
	}
	if g.Endpoint == "" {
		return fmt.Errorf("%w: echo goal needs an endpoint", ErrGoalInvalid)
	}
	return nil
}

func (echoService) Freq(any) float64           { return 0 }
func (echoService) Duration(any) time.Duration { return 0 }

func (echoService) Target(_ *Orchestrator, goal any) geom.Vec3 {
	g, _ := goal.(echoGoal)
	return g.Pos
}

func (echoService) BuildObjective(ctx context.Context, o *Orchestrator, t *Task, band Band, spec engine.Spec) (optimize.Objective, Evaluator, error) {
	g, ok := t.Goal.(echoGoal)
	if !ok {
		return nil, nil, fmt.Errorf("%w: task %d: echo wants an echoGoal", ErrGoalInvalid, t.ID)
	}
	lb := band.AP.Budget
	tc, err := o.eng.Tx(ctx, spec, band.AP.Pos)
	if err != nil {
		return nil, nil, err
	}
	ch := tc.Channel(g.Pos)
	obj, err := optimize.NewCoverageObjective([]*rfsim.Channel{ch}, lb)
	if err != nil {
		return nil, nil, err
	}
	eval := func(ph [][]float64) *Result {
		h, _ := ch.Eval(optimize.PhasesToConfigs(ph))
		return &Result{Metric: lb.SNRdB(h), MetricName: "echo_snr_db", Satisfied: true}
	}
	return obj, eval, nil
}

func (s echoService) Weight(*Orchestrator, *Task, optimize.Objective) float64 { return s.weight }

var registerEchoOnce sync.Once

// registerEcho installs the stub service exactly once per test binary (the
// registry is process-global).
func registerEcho(t *testing.T) {
	t.Helper()
	registerEchoOnce.Do(func() {
		if err := RegisterService(echoService{weight: 1}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestStubServiceSchedulesWithoutCoreEdits(t *testing.T) {
	registerEcho(t)
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	task, err := r.o.Submit(context.Background(), echoKind, echoGoal{Endpoint: "probe", Pos: bedroomPoint()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if task.Kind.String() != "echo" {
		t.Errorf("kind string = %q, want echo", task.Kind.String())
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := r.o.Task(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != TaskRunning {
		t.Fatalf("stub service task state = %v (err %v)", got.State, got.Err)
	}
	if got.Result == nil || got.Result.MetricName != "echo_snr_db" {
		t.Fatalf("stub service result = %+v", got.Result)
	}
	if err := r.o.EndTask(task.ID); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitUnknownServiceKind(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	_, err := r.o.Submit(context.Background(), ServiceKind(200), struct{}{}, 1)
	if !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v, want ErrUnknownService", err)
	}
}

func TestRegisterServiceRejectsNilAndDuplicates(t *testing.T) {
	registerEcho(t)
	if err := RegisterService(nil); err == nil {
		t.Error("nil service accepted")
	}
	if err := RegisterService(echoService{}); err == nil {
		t.Error("duplicate kind accepted")
	}
}

func TestRegisteredServicesAndKindByName(t *testing.T) {
	registerEcho(t)
	kinds := RegisteredServices()
	want := map[ServiceKind]bool{
		ServiceLink: true, ServiceCoverage: true, ServiceSensing: true,
		ServicePowering: true, ServiceSecurity: true, echoKind: true,
	}
	seen := map[ServiceKind]bool{}
	for i, k := range kinds {
		if i > 0 && kinds[i-1] >= k {
			t.Errorf("kinds not ascending: %v", kinds)
		}
		seen[k] = true
	}
	for k := range want {
		if !seen[k] {
			t.Errorf("kind %d missing from RegisteredServices", k)
		}
	}
	for _, name := range []string{"link", "coverage", "sensing", "powering", "security", "echo"} {
		k, err := KindByName(name)
		if err != nil {
			t.Errorf("KindByName(%q): %v", name, err)
			continue
		}
		if k.String() != name {
			t.Errorf("KindByName(%q) = kind %d (%q)", name, k, k.String())
		}
	}
	if _, err := KindByName("nope"); !errors.Is(err, ErrUnknownService) {
		t.Errorf("KindByName(nope) err = %v, want ErrUnknownService", err)
	}
}

func TestTypedSentinels(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	if _, err := r.o.Task(999); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("Task(999) err = %v, want ErrUnknownTask", err)
	}
	if err := r.o.EndTask(999); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("EndTask(999) err = %v, want ErrUnknownTask", err)
	}
	if err := r.o.SetIdle(999, true); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("SetIdle(999) err = %v, want ErrUnknownTask", err)
	}
	if _, err := r.o.EnhanceLink(context.Background(), LinkGoal{}, 1); !errors.Is(err, ErrGoalInvalid) {
		t.Errorf("empty link goal err = %v, want ErrGoalInvalid", err)
	}
	if _, err := r.o.OptimizeCoverage(context.Background(), CoverageGoal{Region: "nope"}, 1); !errors.Is(err, ErrGoalInvalid) {
		t.Errorf("bad region err = %v, want ErrGoalInvalid", err)
	}

	// A band nothing serves: the task fails with the typed sentinel.
	task, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "laptop", Pos: bedroomPoint(), FreqHz: 2.4e9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.o.Reconcile(context.Background())
	got, _ := r.o.Task(task.ID)
	if got.State != TaskFailed || !errors.Is(got.Err, ErrNoAccessPoint) {
		t.Errorf("off-band task: state=%v err=%v, want failed/ErrNoAccessPoint", got.State, got.Err)
	}
}
