package orchestrator

import (
	"math"
	"sort"
	"strings"
	"time"

	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

// Sharding: the orchestrator splits its task table and committed plans
// into one shard per interference domain (engine.Partition over the
// scene). Shards reconcile concurrently and independently — a dead
// device or an expired deadline re-plans its domain, not the building.
// Single-domain scenes degenerate to exactly the old monolithic path:
// one shard holding every device, reconciled serially.

// shard is one interference domain's scheduling state. All fields are
// guarded by the orchestrator's mutex except during a reconcile, which
// snapshots what it needs and commits results back under the lock.
type shard struct {
	id      int
	devices []string // member device IDs, sorted
	devSet  map[string]struct{}
	centers []geom.Vec3 // panel centers parallel to devices, for routing
	plans   []*Plan

	lastReconcile time.Duration // wall-clock cost of the last reconcile
	reconciles    uint64
}

func (sh *shard) owns(deviceID string) bool {
	_, ok := sh.devSet[deviceID]
	return ok
}

// sameDevices reports whether two shards serve the identical device set.
func (sh *shard) sameDevices(other *shard) bool {
	if other == nil || len(sh.devices) != len(other.devices) {
		return false
	}
	for i, id := range sh.devices {
		if other.devices[i] != id {
			return false
		}
	}
	return true
}

// ShardStat is one shard's observable state for health reporting.
type ShardStat struct {
	// Domain is the shard's interference-domain index.
	Domain int
	// Surfaces lists the member device IDs.
	Surfaces []string
	// Tasks counts live (pending/running/idle) tasks routed to the shard.
	Tasks int
	// Running counts tasks currently holding resources.
	Running int
	// Reconciles counts completed per-shard reconciles.
	Reconciles uint64
	// LastReconcile is the wall-clock duration of the most recent
	// reconcile of this shard (0 before the first).
	LastReconcile time.Duration
}

// ShardStats returns per-shard task counts and reconcile latency, sorted
// by domain — the operator's view behind `surfctl health`.
func (o *Orchestrator) ShardStats() []ShardStat {
	o.geoMu.RLock()
	defer o.geoMu.RUnlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ensureShardsLocked()
	out := make([]ShardStat, len(o.shards))
	for i, sh := range o.shards {
		out[i] = ShardStat{
			Domain:        sh.id,
			Surfaces:      append([]string(nil), sh.devices...),
			Reconciles:    sh.reconciles,
			LastReconcile: sh.lastReconcile,
		}
	}
	for _, t := range o.tasks {
		if t.State == TaskDone || t.State == TaskFailed {
			continue
		}
		if t.Domain >= 0 && t.Domain < len(out) {
			out[t.Domain].Tasks++
			if t.State == TaskRunning {
				out[t.Domain].Running++
			}
		}
	}
	return out
}

// DomainForDevice returns the interference domain owning a device ID
// (ok=false for unknown devices).
func (o *Orchestrator) DomainForDevice(deviceID string) (int, bool) {
	o.geoMu.RLock()
	defer o.geoMu.RUnlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ensureShardsLocked()
	d, ok := o.shardOf[deviceID]
	return d, ok
}

// apFreqs lists the registered AP carrier frequencies, ascending.
func (o *Orchestrator) apFreqs() []float64 {
	aps := o.HW.APs()
	out := make([]float64, 0, len(aps))
	for _, ap := range aps {
		out = append(out, ap.FreqHz)
	}
	sort.Float64s(out)
	return out
}

// couplingToDB is the best-case (max over bands) wall attenuation from
// any of the shard's panel centers to a point, in power dB.
func (o *Orchestrator) couplingToDB(sh *shard, p geom.Vec3, freqs []float64) float64 {
	best := math.Inf(-1)
	for _, c := range sh.centers {
		for _, f := range freqs {
			g := o.Scene.SegmentGain(c, p, f)
			if g <= 0 {
				continue
			}
			if db := 20 * math.Log10(g); db > best {
				best = db
			}
		}
	}
	return best
}

// routeLocked picks the owning shard for a task: the domain whose
// surfaces couple most strongly to the goal's spatial target, falling
// back to plain distance when every domain is fully blocked (the task
// will fail to schedule either way, but routing stays deterministic).
// Caller holds o.mu with shards built.
func (o *Orchestrator) routeLocked(t *Task, freqs []float64) int {
	if len(o.shards) <= 1 {
		return 0
	}
	var target geom.Vec3
	if svc, err := t.service(); err == nil {
		target = svc.Target(o, t.Goal)
	}
	best, bestDB := 0, math.Inf(-1)
	for _, sh := range o.shards {
		if len(sh.centers) == 0 {
			continue
		}
		if db := o.couplingToDB(sh, target, freqs); db > bestDB {
			best, bestDB = sh.id, db
		}
	}
	if !math.IsInf(bestDB, -1) {
		return best
	}
	best, bestDist := 0, math.Inf(1)
	for _, sh := range o.shards {
		for _, c := range sh.centers {
			if d := c.Dist(target); d < bestDist {
				best, bestDist = sh.id, d
			}
		}
	}
	return best
}

// ensureShardsLocked (re)builds the shard set when the scene geometry
// revision or the registered device set changed, re-routing every live
// task to its owning domain. Tasks whose serving surface set actually
// changed (a wall removal merging two domains, or a split) emit a
// TaskMigrated event — pure renumbering does not. Caller holds o.mu.
func (o *Orchestrator) ensureShardsLocked() {
	devs := o.HW.Surfaces()
	ids := make([]string, len(devs))
	for i, d := range devs {
		ids[i] = d.ID
	}
	sig := strings.Join(ids, "\x00")
	rev := o.Scene.Revision()
	if o.shards != nil && o.partRev == rev && o.partSig == sig {
		return
	}

	var domains [][]int
	if o.Opts.DisableSharding || len(devs) <= 1 {
		all := make([]int, len(devs))
		for i := range all {
			all[i] = i
		}
		domains = [][]int{all}
	} else {
		surfs := make([]*surface.Surface, len(devs))
		for i, d := range devs {
			surfs[i] = d.Drv.Surface()
		}
		part, err := o.eng.Partition(engine.DomainSpec{
			Scene:         o.Scene,
			Surfaces:      surfs,
			FreqsHz:       o.apFreqs(),
			MinCouplingDB: o.Opts.MinCouplingDB,
			ProbeStep:     o.Opts.DomainProbeStep,
		})
		if err != nil || len(part.Domains) == 0 {
			all := make([]int, len(devs))
			for i := range all {
				all[i] = i
			}
			domains = [][]int{all}
		} else {
			domains = part.Domains
		}
	}

	prev := o.shards
	shards := make([]*shard, len(domains))
	shardOf := make(map[string]int, len(devs))
	for di, members := range domains {
		sh := &shard{
			id:      di,
			devices: make([]string, 0, len(members)),
			devSet:  make(map[string]struct{}, len(members)),
			centers: make([]geom.Vec3, 0, len(members)),
		}
		for _, mi := range members {
			d := devs[mi]
			sh.devices = append(sh.devices, d.ID)
			sh.devSet[d.ID] = struct{}{}
			sh.centers = append(sh.centers, d.Drv.Surface().Panel.Center())
			shardOf[d.ID] = di
		}
		shards[di] = sh
	}

	// Carry committed plans across the rebuild so Plans() stays complete
	// between the topology change and the reconcile it triggers: each old
	// plan lands in the new shard owning its first surface.
	for _, old := range prev {
		for _, p := range old.plans {
			target := shards[0]
			if len(p.Surfaces) > 0 {
				if di, ok := shardOf[p.Surfaces[0]]; ok {
					target = shards[di]
				}
			}
			target.plans = append(target.plans, p)
		}
	}
	// Reconcile counters survive for shards whose device set is unchanged
	// (the common single-domain case), so health history is not reset by
	// unrelated device registrations.
	for _, sh := range shards {
		for _, old := range prev {
			if sh.sameDevices(old) {
				sh.reconciles = old.reconciles
				sh.lastReconcile = old.lastReconcile
				break
			}
		}
	}

	o.shards = shards
	o.shardOf = shardOf
	o.partRev = rev
	o.partSig = sig

	// Re-route every non-terminal task, in ID order so migration events
	// are deterministic.
	taskIDs := make([]int, 0, len(o.tasks))
	for id := range o.tasks {
		taskIDs = append(taskIDs, id)
	}
	sort.Ints(taskIDs)
	freqs := o.apFreqs()
	for _, id := range taskIDs {
		t := o.tasks[id]
		if t.State == TaskDone || t.State == TaskFailed {
			continue
		}
		var oldShard *shard
		if prev != nil && t.Domain >= 0 && t.Domain < len(prev) {
			oldShard = prev[t.Domain]
		}
		t.Domain = o.routeLocked(t, freqs)
		if prev == nil {
			continue // first build: nothing to migrate from
		}
		if !shards[t.Domain].sameDevices(oldShard) {
			o.emitLocked(t, telemetry.TaskMigrated)
		}
	}
}

// shardByDomainLocked resolves a domain index; nil when out of range.
// Caller holds o.mu.
func (o *Orchestrator) shardByDomainLocked(domain int) *shard {
	if domain < 0 || domain >= len(o.shards) {
		return nil
	}
	return o.shards[domain]
}
