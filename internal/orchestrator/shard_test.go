package orchestrator

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

// stripRig is a RoomStrip with one panel per room: the multi-domain
// fixture for routing, migration, and cross-shard isolation tests.
type stripRig struct {
	strip *scene.RoomStrip
	hw    *hwmgr.Manager
	o     *Orchestrator
}

// addStripSurface mounts one NR-Surface panel on room i's north mount.
func addStripSurface(t *testing.T, strip *scene.RoomStrip, hw *hwmgr.Manager, room, rows, cols int) string {
	t.Helper()
	id := scene.RoomMountNorth(room)
	spec, err := driver.Lookup(driver.ModelNRSurface)
	if err != nil {
		t.Fatal(err)
	}
	pitch := em.Wavelength(spec.FreqLowHz+(spec.FreqHighHz-spec.FreqLowHz)/2) / 2
	m := strip.Mounts[id]
	panel := m.Panel(float64(cols)*pitch+0.02, float64(rows)*pitch+0.02)
	s, err := surface.New(id, panel, surface.Layout{Rows: rows, Cols: cols, PitchU: pitch, PitchV: pitch}, spec.OpMode, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := driver.New(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.AddSurface(id, id, d); err != nil {
		t.Fatal(err)
	}
	return id
}

func newStripRig(t *testing.T, rooms int, opts Options) *stripRig {
	t.Helper()
	strip := scene.NewRoomStrip(rooms)
	hw := hwmgr.New()
	for i := 0; i < rooms; i++ {
		addStripSurface(t, strip, hw, i, 8, 8)
	}
	if err := hw.AddAP(&hwmgr.AccessPoint{
		ID: "ap0", Pos: strip.AP, FreqHz: 24e9,
		Budget:   rfsim.DefaultBudget(),
		Antennas: 4,
	}); err != nil {
		t.Fatal(err)
	}
	o, err := New(strip.Scene, hw, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &stripRig{strip: strip, hw: hw, o: o}
}

// roomLink is a link goal anchored in room i.
func roomLink(i int, name string) LinkGoal {
	return LinkGoal{Endpoint: name, Pos: scene.RoomCenter(i)}
}

func TestShardRoutingAndStats(t *testing.T) {
	r := newStripRig(t, 3, fastOpts())
	ctx := context.Background()

	tasks := make([]*Task, 3)
	for i := range tasks {
		task, err := r.o.EnhanceLink(ctx, roomLink(i, fmt.Sprintf("ue%d", i)), 1)
		if err != nil {
			t.Fatal(err)
		}
		if task.Domain != i {
			t.Fatalf("task in room %d routed to domain %d", i, task.Domain)
		}
		tasks[i] = task
	}
	for i := 0; i < 3; i++ {
		d, ok := r.o.DomainForDevice(scene.RoomMountNorth(i))
		if !ok || d != i {
			t.Fatalf("DomainForDevice(room %d) = %d,%v, want %d", i, d, ok, i)
		}
	}

	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	stats := r.o.ShardStats()
	if len(stats) != 3 {
		t.Fatalf("got %d shards, want 3", len(stats))
	}
	for i, st := range stats {
		if st.Domain != i {
			t.Fatalf("stats[%d].Domain = %d", i, st.Domain)
		}
		if len(st.Surfaces) != 1 || st.Surfaces[0] != scene.RoomMountNorth(i) {
			t.Fatalf("shard %d surfaces = %v", i, st.Surfaces)
		}
		if st.Tasks != 1 || st.Running != 1 {
			t.Fatalf("shard %d tasks=%d running=%d, want 1/1", i, st.Tasks, st.Running)
		}
		if st.Reconciles == 0 || st.LastReconcile <= 0 {
			t.Fatalf("shard %d reconciles=%d last=%v, want progress", i, st.Reconciles, st.LastReconcile)
		}
	}

	// Every committed plan stays inside one interference domain.
	for _, p := range r.o.Plans() {
		assertPlanSingleDomain(t, r.o, p)
	}
}

// assertPlanSingleDomain pins the shard isolation invariant: a plan's
// surfaces all belong to one domain, and every live task it serves is
// routed to that same domain.
func assertPlanSingleDomain(t *testing.T, o *Orchestrator, p *Plan) {
	t.Helper()
	if len(p.Surfaces) == 0 {
		t.Fatalf("plan %s/%s has no surfaces", p.APID, p.Surfaces)
	}
	dom, ok := o.DomainForDevice(p.Surfaces[0])
	if !ok {
		t.Fatalf("plan surface %s has no domain", p.Surfaces[0])
	}
	for _, s := range p.Surfaces {
		if d, ok := o.DomainForDevice(s); !ok || d != dom {
			t.Fatalf("plan mixes domains: surface %s in %d, expected %d", s, d, dom)
		}
	}
	for _, e := range p.Entries {
		for _, id := range e.TaskIDs {
			task, err := o.Task(id)
			if err != nil {
				continue // ended mid-race; its entries are pruned next pass
			}
			if task.State == TaskDone || task.State == TaskFailed {
				continue
			}
			if task.Domain != dom {
				t.Fatalf("plan in domain %d serves task %d routed to domain %d", dom, id, task.Domain)
			}
		}
	}
}

// TestShardMergeSplitMigratesTasks is the crossing-domain golden: walls
// merge and re-split the partition, and every live task follows its room's
// shard without dropping a lifecycle event. The per-task event trails are
// golden-checked end to end.
func TestShardMergeSplitMigratesTasks(t *testing.T) {
	r := newStripRig(t, 2, fastOpts())
	ctx := context.Background()

	bus := telemetry.NewEventBus()
	events, cancel := bus.Subscribe(256)
	defer cancel()
	r.o.SetEventBus(bus)

	t0, err := r.o.EnhanceLink(ctx, roomLink(0, "a"), 1)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := r.o.EnhanceLink(ctx, roomLink(1, "b"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	// Task accessors return snapshots, so re-fetch the routed domain
	// after every topology change.
	dom := func(id int) int {
		task, err := r.o.Task(id)
		if err != nil {
			t.Fatal(err)
		}
		return task.Domain
	}
	if dom(t0.ID) != 0 || dom(t1.ID) != 1 {
		t.Fatalf("initial routing: t0=%d t1=%d, want 0/1", dom(t0.ID), dom(t1.ID))
	}

	// Knock down the divider: the rooms couple, the two shards merge, and
	// both tasks migrate into the merged domain.
	if err := r.strip.RemoveWall(scene.RoomDivider(0)); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if dom(t0.ID) != 0 || dom(t1.ID) != 0 {
		t.Fatalf("post-merge routing: t0=%d t1=%d, want 0/0", dom(t0.ID), dom(t1.ID))
	}
	if n := len(r.o.ShardStats()); n != 1 {
		t.Fatalf("post-merge shard count = %d, want 1", n)
	}

	// Rebuild the divider: the partition splits again and the room-1 task
	// migrates back out of the merged shard.
	up := geom.V(0, 0, 1)
	r.strip.AddWall(scene.RoomDivider(0),
		geom.RectXY(geom.V(scene.RoomW, 0, 0), geom.V(0, 1, 0), up, scene.RoomD, scene.RoomH),
		em.Concrete)
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if dom(t0.ID) != 0 || dom(t1.ID) != 1 {
		t.Fatalf("post-split routing: t0=%d t1=%d, want 0/1", dom(t0.ID), dom(t1.ID))
	}
	if n := len(r.o.ShardStats()); n != 2 {
		t.Fatalf("post-split shard count = %d, want 2", n)
	}

	if err := r.o.EndTask(t0.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.o.EndTask(t1.ID); err != nil {
		t.Fatal(err)
	}
	cancel()

	// Golden event trails. Both tasks migrate on the merge (their shard's
	// device set grew) and again on the split; each migration is followed
	// by a full re-schedule, and no lifecycle event is lost in between.
	trail := map[int][]string{}
	domains := map[int][]int{}
	for ev := range events {
		if ev.TaskID == 0 {
			continue // device health events
		}
		trail[ev.TaskID] = append(trail[ev.TaskID], ev.State)
		if ev.State == telemetry.TaskMigrated {
			domains[ev.TaskID] = append(domains[ev.TaskID], ev.Domain)
		}
	}
	want := []string{
		telemetry.TaskSubmitted,
		telemetry.TaskScheduled, telemetry.TaskRunning, // initial reconcile
		telemetry.TaskMigrated,                         // divider removed: shards merge
		telemetry.TaskScheduled, telemetry.TaskRunning, // re-plan in merged domain
		telemetry.TaskMigrated,                         // divider rebuilt: shards split
		telemetry.TaskScheduled, telemetry.TaskRunning, // re-plan in own room
		telemetry.TaskDone,
	}
	for _, task := range []*Task{t0, t1} {
		got := trail[task.ID]
		if len(got) != len(want) {
			t.Fatalf("task %d trail = %v, want %v", task.ID, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("task %d trail = %v, want %v", task.ID, got, want)
			}
		}
	}
	if d := domains[t0.ID]; len(d) != 2 || d[0] != 0 || d[1] != 0 {
		t.Fatalf("t0 migration domains = %v, want [0 0]", d)
	}
	if d := domains[t1.ID]; len(d) != 2 || d[0] != 0 || d[1] != 1 {
		t.Fatalf("t1 migration domains = %v, want [0 1]", d)
	}
}

// TestShardReconcileRacePinsReleaseToOwnShard races task churn against
// concurrent per-shard reconciles under the race detector and pins the
// invariant that plan-entry release never crosses shards: a task ending
// in one domain must never perturb another domain's committed plans.
// (The "Pin" in the name keeps it in the seeded fault suite.)
func TestShardReconcileRacePinsReleaseToOwnShard(t *testing.T) {
	opts := Options{OptIters: 6, GridStep: 2.0, SensingGridStep: 2.5, SensingBins: 9, SensingSubcarriers: 2}
	r := newStripRig(t, 2, opts)
	ctx := context.Background()

	// One long-lived anchor task per room; their plans must survive the
	// churn in the other room untouched.
	anchors := make([]*Task, 2)
	for i := range anchors {
		task, err := r.o.EnhanceLink(ctx, roomLink(i, fmt.Sprintf("anchor%d", i)), 2)
		if err != nil {
			t.Fatal(err)
		}
		anchors[i] = task
	}
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}

	const churns = 30
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < churns; i++ {
			room := i % 2
			task, err := r.o.EnhanceLink(ctx, roomLink(room, fmt.Sprintf("churn%d", i)), 1)
			if err != nil {
				t.Errorf("churn submit: %v", err)
				return
			}
			if i%3 == 0 {
				_ = r.o.ReconcileTask(ctx, task.ID)
			}
			if err := r.o.EndTask(task.ID); err != nil {
				t.Errorf("churn end: %v", err)
				return
			}
		}
	}()
	for d := 0; d < 2; d++ {
		go func(d int) {
			defer wg.Done()
			for i := 0; i < churns; i++ {
				if err := r.o.ReconcileDomain(ctx, d); err != nil {
					t.Errorf("reconcile domain %d: %v", d, err)
					return
				}
			}
		}(d)
	}
	wg.Wait()

	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	for _, p := range r.o.Plans() {
		assertPlanSingleDomain(t, r.o, p)
	}
	for i, a := range anchors {
		task, err := r.o.Task(a.ID)
		if err != nil {
			t.Fatal(err)
		}
		if task.State != TaskRunning {
			t.Fatalf("anchor %d state = %v after churn, want running", i, task.State)
		}
		if task.Domain != i {
			t.Fatalf("anchor %d drifted to domain %d", i, task.Domain)
		}
	}
}
