package orchestrator

import (
	"encoding/json"
	"fmt"
	"time"

	"surfos/internal/telemetry"
)

// Task persistence: a TaskSpec is the durable form of one submission —
// everything needed to re-admit the task after a control-plane restart.
// Plans, optimizer state and results are deliberately *not* part of it:
// they are derived state, recomputed from scratch at recovery time
// against the then-current surface and health inventory.

// TaskSpec is the JSON-stable encoding of a task submission.
type TaskSpec struct {
	ID       int    `json:"id"`
	Kind     string `json:"kind"` // service registry name
	Priority int    `json:"priority"`
	// CreatedUnixNanos/DeadlineUnixNanos are virtual-clock times
	// (orchestrators start their clock at the Unix epoch).
	CreatedUnixNanos  int64 `json:"created,omitempty"`
	DeadlineUnixNanos int64 `json:"deadline,omitempty"`
	// Goal is the service-specific goal, encoded by the service's
	// GoalCodec.
	Goal json.RawMessage `json:"goal"`
	// Tenant is the submitting tenant; omitted for DefaultTenant so
	// single-tenant journals keep their pre-multi-tenant byte layout.
	Tenant string `json:"tenant,omitempty"`
}

// GoalCodec is optionally implemented by services whose goals can be
// persisted and restored. Services without it still schedule normally;
// their tasks are simply not journaled (and die with the daemon).
type GoalCodec interface {
	// EncodeGoal marshals a validated goal to its durable JSON form.
	EncodeGoal(goal any) ([]byte, error)
	// DecodeGoal reverses EncodeGoal.
	DecodeGoal(data []byte) (any, error)
}

// jsonGoal implements GoalCodec for a plain-JSON goal struct; the
// built-in services embed it (e.g. jsonGoal[LinkGoal]).
type jsonGoal[T any] struct{}

func (jsonGoal[T]) EncodeGoal(goal any) ([]byte, error) {
	g, ok := goal.(T)
	if !ok {
		var want T
		return nil, fmt.Errorf("%w: cannot persist %T as %T", ErrGoalInvalid, goal, want)
	}
	return json.Marshal(g)
}

func (jsonGoal[T]) DecodeGoal(data []byte) (any, error) {
	var g T
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("%w: goal: %v", ErrGoalInvalid, err)
	}
	return g, nil
}

// specLocked encodes the task's durable spec, ok=false when the service
// has no goal codec. Caller holds o.mu.
func (o *Orchestrator) specLocked(t *Task) ([]byte, bool) {
	svc, err := t.service()
	if err != nil {
		return nil, false
	}
	codec, ok := svc.(GoalCodec)
	if !ok {
		return nil, false
	}
	goal, err := codec.EncodeGoal(t.Goal)
	if err != nil {
		return nil, false
	}
	spec := TaskSpec{
		ID:               t.ID,
		Kind:             svc.Name(),
		Priority:         t.Priority,
		CreatedUnixNanos: t.Created.UnixNano(),
		Goal:             goal,
	}
	if !t.Deadline.IsZero() {
		spec.DeadlineUnixNanos = t.Deadline.UnixNano()
	}
	if t.Tenant != "" && t.Tenant != DefaultTenant {
		spec.Tenant = t.Tenant
	}
	data, err := json.Marshal(spec)
	if err != nil {
		return nil, false
	}
	return data, true
}

// RestoreTask re-admits a journaled task under its original ID: the spec
// is decoded through the service registry, re-validated against the
// current scene, and inserted pending (or idle, when lastState says the
// task was parked at crash time). The ID allocator is bumped past the
// restored ID so new submissions never collide. The restored task emits a
// fresh submitted event — with its spec attached — so an attached journal
// re-records it and watchers see the re-admission.
func (o *Orchestrator) RestoreTask(specJSON []byte, lastState string) (*Task, error) {
	var spec TaskSpec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return nil, fmt.Errorf("%w: spec: %v", ErrGoalInvalid, err)
	}
	if spec.ID <= 0 {
		return nil, fmt.Errorf("%w: spec has no task id", ErrGoalInvalid)
	}
	kind, err := KindByName(spec.Kind)
	if err != nil {
		return nil, err
	}
	svc, err := serviceFor(kind)
	if err != nil {
		return nil, err
	}
	codec, ok := svc.(GoalCodec)
	if !ok {
		return nil, fmt.Errorf("%w: service %q has no goal codec", ErrGoalInvalid, spec.Kind)
	}
	goal, err := codec.DecodeGoal(spec.Goal)
	if err != nil {
		return nil, err
	}
	if err := svc.Validate(o, goal); err != nil {
		return nil, err
	}
	priority := spec.Priority
	if priority <= 0 {
		priority = 1
	}

	tenant := spec.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}

	o.geoMu.RLock()
	defer o.geoMu.RUnlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, exists := o.tasks[spec.ID]; exists {
		return nil, fmt.Errorf("%w: task %d already exists", ErrGoalInvalid, spec.ID)
	}
	// Restoration bypasses admission control — the task was admitted
	// before the crash; shrinking quotas must not drop journaled work —
	// but is still routed to its owning interference-domain shard.
	o.ensureShardsLocked()
	t := &Task{
		ID:       spec.ID,
		Kind:     kind,
		Priority: priority,
		State:    TaskPending,
		Created:  time.Unix(0, spec.CreatedUnixNanos),
		Goal:     goal,
		Tenant:   tenant,
		svc:      svc,
	}
	if spec.DeadlineUnixNanos != 0 {
		t.Deadline = time.Unix(0, spec.DeadlineUnixNanos)
	}
	t.Domain = o.routeLocked(t, o.apFreqs())
	if spec.ID >= o.nextID {
		o.nextID = spec.ID + 1
	}
	o.tasks[t.ID] = t
	o.emitLocked(t, telemetry.TaskSubmitted)
	if lastState == telemetry.TaskIdle {
		t.State = TaskIdle
		o.emitLocked(t, telemetry.TaskIdle)
	}
	return t.clone(), nil
}

// ReserveIDs advances the task ID allocator past maxSeen, so IDs of tasks
// that ended (and were compacted out of the journal) before a restart are
// never handed out again.
func (o *Orchestrator) ReserveIDs(maxSeen int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if maxSeen >= o.nextID {
		o.nextID = maxSeen + 1
	}
}
