package orchestrator

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"surfos/internal/driver"
	"surfos/internal/telemetry"
)

// submitWithSpec submits a link task and returns the durable spec carried
// on its submitted event.
func submitWithSpec(t *testing.T, r *rig) (*Task, []byte) {
	t.Helper()
	bus := telemetry.NewEventBus()
	r.o.SetEventBus(bus)
	ch, unsub := bus.Subscribe(16)
	defer unsub()
	task, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "tv", Pos: bedroomPoint()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for {
		select {
		case ev := <-ch:
			if ev.State == telemetry.TaskSubmitted && ev.TaskID == task.ID {
				if len(ev.Spec) == 0 {
					t.Fatal("submitted event carries no spec")
				}
				return task, ev.Spec
			}
		default:
			t.Fatal("no submitted event observed")
		}
	}
}

func TestSubmittedEventCarriesSpec(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	task, raw := submitWithSpec(t, r)

	var spec TaskSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		t.Fatalf("spec does not parse: %v", err)
	}
	if spec.ID != task.ID || spec.Kind != "link" || spec.Priority != 2 {
		t.Errorf("spec = %+v", spec)
	}
	var goal LinkGoal
	if err := json.Unmarshal(spec.Goal, &goal); err != nil {
		t.Fatal(err)
	}
	if goal.Endpoint != "tv" || goal.Pos != bedroomPoint() {
		t.Errorf("goal = %+v", goal)
	}
}

func TestRestoreTaskRoundTrip(t *testing.T) {
	src := newRig(t, fastOpts(), driver.ModelNRSurface)
	orig, raw := submitWithSpec(t, src)

	// A brand-new control plane re-admits the task under its original ID.
	dst := newRig(t, fastOpts(), driver.ModelNRSurface)
	bus := telemetry.NewEventBus()
	dst.o.SetEventBus(bus)
	ch, unsub := bus.Subscribe(16)
	defer unsub()
	restored, err := dst.o.RestoreTask(raw, telemetry.TaskRunning)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID != orig.ID || restored.Kind != ServiceLink || restored.Priority != 2 {
		t.Errorf("restored = %+v", restored)
	}
	if restored.State != TaskPending {
		t.Errorf("restored state = %v, want pending (plans are derived)", restored.State)
	}
	// The restoration re-emits a submitted event with the spec attached, so
	// an attached journal records the task again.
	var resubmitted bool
	for done := false; !done; {
		select {
		case ev := <-ch:
			if ev.State == telemetry.TaskSubmitted && ev.TaskID == orig.ID && len(ev.Spec) > 0 {
				resubmitted = true
			}
		default:
			done = true
		}
	}
	if !resubmitted {
		t.Error("restore did not re-emit a submitted event with spec")
	}

	// The ID allocator is bumped past the restored ID.
	next, err := dst.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "tv", Pos: bedroomPoint()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if next.ID <= restored.ID {
		t.Errorf("next ID %d collides with restored %d", next.ID, restored.ID)
	}

	// Re-planning from scratch schedules the restored task.
	if err := dst.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := dst.o.Task(restored.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != TaskRunning || got.Result == nil {
		t.Errorf("restored task did not run: %v (result %v)", got.State, got.Result)
	}
}

func TestRestoreTaskIdle(t *testing.T) {
	src := newRig(t, fastOpts(), driver.ModelNRSurface)
	_, raw := submitWithSpec(t, src)
	dst := newRig(t, fastOpts(), driver.ModelNRSurface)
	restored, err := dst.o.RestoreTask(raw, telemetry.TaskIdle)
	if err != nil {
		t.Fatal(err)
	}
	if restored.State != TaskIdle {
		t.Errorf("state = %v, want idle", restored.State)
	}
	if err := dst.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, _ := dst.o.Task(restored.ID); got.State != TaskIdle {
		t.Errorf("idle task scheduled by reconcile: %v", got.State)
	}
}

func TestRestoreTaskRejectsBadSpecs(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	_, raw := submitWithSpec(t, r)

	cases := map[string][]byte{
		"garbage":      []byte(`{{{`),
		"no id":        []byte(`{"kind":"link","goal":{}}`),
		"unknown kind": []byte(`{"id":7,"kind":"teleport","goal":{}}`),
		"bad goal":     []byte(`{"id":7,"kind":"link","goal":{"endpoint":""}}`),
	}
	for name, spec := range cases {
		if _, err := r.o.RestoreTask(spec, telemetry.TaskRunning); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Colliding with a live task is refused (the journal replayed a spec
	// the orchestrator already holds).
	if _, err := r.o.RestoreTask(raw, telemetry.TaskRunning); !errors.Is(err, ErrGoalInvalid) {
		t.Errorf("duplicate restore: err = %v, want ErrGoalInvalid", err)
	}
}
