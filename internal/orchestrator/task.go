// Package orchestrator is the SurfOS surface orchestrator (paper §3.2):
// the universal central control plane. It exposes environment-wide service
// request APIs — EnhanceLink, OptimizeCoverage, EnableSensing,
// InitPowering, SecureLink, and the generic Submit — each creating a task
// (akin to an OS process), and schedules all surface hardware globally:
// multiplexing tasks across time, frequency and space slices, optimizing
// configurations (including joint multitask optimization over a single
// shared configuration), and pushing the results to devices through the
// hardware manager.
//
// The package is split along the mechanism/policy line: scheduler.go is
// the service-agnostic core (grouping, strategy pick, optimization,
// commit), while each service_*.go file is one pluggable policy module
// implementing the Service interface, registered in service.go's table.
package orchestrator

import (
	"fmt"
	"time"
)

// ServiceKind identifies a surface service (paper Figure 3's service
// interface row).
type ServiceKind uint8

// Built-in services. Extensions register further kinds via
// RegisterService.
const (
	ServiceLink ServiceKind = iota + 1
	ServiceCoverage
	ServiceSensing
	ServicePowering
	ServiceSecurity
)

// String implements fmt.Stringer via the service registry.
func (k ServiceKind) String() string {
	if name, ok := serviceName(k); ok {
		return name
	}
	return fmt.Sprintf("service(%d)", uint8(k))
}

// TaskState is the lifecycle state of a service task.
type TaskState uint8

// Task states. Pending tasks await scheduling; Running tasks hold resource
// slices; Idle tasks keep their identity but release hardware (paper §3.2:
// "setting a task idle when not used and releasing resources"); Done and
// Failed are terminal.
const (
	TaskPending TaskState = iota
	TaskRunning
	TaskIdle
	TaskDone
	TaskFailed
)

// String implements fmt.Stringer.
func (s TaskState) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskRunning:
		return "running"
	case TaskIdle:
		return "idle"
	case TaskDone:
		return "done"
	case TaskFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Result captures a task's achieved service metrics after scheduling.
type Result struct {
	// Metric is the task's headline number: achieved SNR (link), median
	// SNR (coverage), mean localization error in meters (sensing),
	// received power dBm (powering), or user-eve SNR gap dB (security).
	Metric float64
	// MetricName documents the unit for logs and the CLI.
	MetricName string
	// Satisfied reports whether the goal's threshold was met (always true
	// for goals without thresholds).
	Satisfied bool
	// Share is the task's time share on its surfaces (1.0 when it owns
	// them or shares via joint configuration multiplexing).
	Share float64
	// Surfaces lists the device IDs serving the task.
	Surfaces []string
	// Strategy names the multiplexing decision that placed this task.
	Strategy string
}

// clone deep-copies a result.
func (r *Result) clone() *Result {
	if r == nil {
		return nil
	}
	cp := *r
	cp.Surfaces = append([]string(nil), r.Surfaces...)
	return &cp
}

// Task is one scheduled service request — the orchestrator's process
// abstraction.
type Task struct {
	ID       int
	Kind     ServiceKind
	Priority int // higher = more important; default 1
	State    TaskState
	Created  time.Time
	Deadline time.Time // zero = no deadline
	// Goal holds the service-specific parameters (one of the *Goal types).
	Goal any
	// FreqHz is the resolved operating frequency.
	FreqHz float64
	// Result is populated by Reconcile while the task runs.
	Result *Result
	// Err records the failure reason for TaskFailed.
	Err error
	// Tenant is the submitting tenant (DefaultTenant unless multi-tenant
	// admission control is in use).
	Tenant string
	// Domain is the interference-domain shard owning the task. Routing is
	// derived from the goal's spatial target against the current scene
	// partition, so it may change when walls move (a TaskMigrated event
	// marks the hand-off).
	Domain int

	// svc is the task's resolved service module (immutable after submit).
	svc Service
}

// clone returns a defensive snapshot of the task: accessors hand these
// out so callers never observe fields mutated under the orchestrator's
// lock during Tick/Reconcile.
func (t *Task) clone() *Task {
	cp := *t
	cp.Result = t.Result.clone()
	return &cp
}

// endpoint returns the goal's served endpoint name ("" when anonymous).
func (t *Task) endpoint() string {
	if n, ok := t.Goal.(EndpointNamer); ok {
		return n.EndpointName()
	}
	return ""
}

// active reports whether the task competes for resources.
func (t *Task) active() bool {
	return t.State == TaskPending || t.State == TaskRunning
}
