// Package orchestrator is the SurfOS surface orchestrator (paper §3.2):
// the universal central control plane. It exposes environment-wide service
// request APIs — EnhanceLink, OptimizeCoverage, EnableSensing,
// InitPowering, SecureLink — each creating a task (akin to an OS process),
// and schedules all surface hardware globally: multiplexing tasks across
// time, frequency and space slices, optimizing configurations (including
// joint multitask optimization over a single shared configuration), and
// pushing the results to devices through the hardware manager.
package orchestrator

import (
	"fmt"
	"time"

	"surfos/internal/geom"
)

// ServiceKind identifies a surface service (paper Figure 3's service
// interface row).
type ServiceKind uint8

// Services.
const (
	ServiceLink ServiceKind = iota + 1
	ServiceCoverage
	ServiceSensing
	ServicePowering
	ServiceSecurity
)

// String implements fmt.Stringer.
func (k ServiceKind) String() string {
	switch k {
	case ServiceLink:
		return "link"
	case ServiceCoverage:
		return "coverage"
	case ServiceSensing:
		return "sensing"
	case ServicePowering:
		return "powering"
	case ServiceSecurity:
		return "security"
	}
	return fmt.Sprintf("service(%d)", uint8(k))
}

// TaskState is the lifecycle state of a service task.
type TaskState uint8

// Task states. Pending tasks await scheduling; Running tasks hold resource
// slices; Idle tasks keep their identity but release hardware (paper §3.2:
// "setting a task idle when not used and releasing resources"); Done and
// Failed are terminal.
const (
	TaskPending TaskState = iota
	TaskRunning
	TaskIdle
	TaskDone
	TaskFailed
)

// String implements fmt.Stringer.
func (s TaskState) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskRunning:
		return "running"
	case TaskIdle:
		return "idle"
	case TaskDone:
		return "done"
	case TaskFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// LinkGoal asks for connectivity enhancement to one endpoint
// (enhance_link() in the paper's Figure 6).
type LinkGoal struct {
	Endpoint   string
	Pos        geom.Vec3
	MinSNRdB   float64
	MaxLatency time.Duration // application latency budget (informational)
	FreqHz     float64       // 0 = the serving AP's band
}

// CoverageGoal asks for a median SNR across a named region
// (optimize_coverage()).
type CoverageGoal struct {
	Region      string
	MedianSNRdB float64
	FreqHz      float64
	// GridStep is the evaluation grid spacing in meters (default 0.5).
	GridStep float64
}

// SensingGoal asks for localization service over a region
// (enable_sensing()).
type SensingGoal struct {
	Region   string
	Type     string // e.g. "tracking"
	Duration time.Duration
	FreqHz   float64
	GridStep float64
}

// PowerGoal asks for wireless power delivery to a device (init_powering()).
type PowerGoal struct {
	Device   string
	Pos      geom.Vec3
	Duration time.Duration
	FreqHz   float64
}

// SecurityGoal asks for eavesdropper suppression while serving a user.
type SecurityGoal struct {
	Endpoint string
	UserPos  geom.Vec3
	EvePos   geom.Vec3
	FreqHz   float64
}

// Result captures a task's achieved service metrics after scheduling.
type Result struct {
	// Metric is the task's headline number: achieved SNR (link), median
	// SNR (coverage), mean localization error in meters (sensing),
	// received power dBm (powering), or user-eve SNR gap dB (security).
	Metric float64
	// MetricName documents the unit for logs and the CLI.
	MetricName string
	// Satisfied reports whether the goal's threshold was met (always true
	// for goals without thresholds).
	Satisfied bool
	// Share is the task's time share on its surfaces (1.0 when it owns
	// them or shares via joint configuration multiplexing).
	Share float64
	// Surfaces lists the device IDs serving the task.
	Surfaces []string
	// Strategy names the multiplexing decision that placed this task.
	Strategy string
}

// Task is one scheduled service request — the orchestrator's process
// abstraction.
type Task struct {
	ID       int
	Kind     ServiceKind
	Priority int // higher = more important; default 1
	State    TaskState
	Created  time.Time
	Deadline time.Time // zero = no deadline
	// Goal holds the service-specific parameters (one of the *Goal types).
	Goal any
	// FreqHz is the resolved operating frequency.
	FreqHz float64
	// Result is populated by Reconcile while the task runs.
	Result *Result
	// Err records the failure reason for TaskFailed.
	Err error
}

// goalFreq extracts the frequency request from a goal (0 = unspecified).
func goalFreq(goal any) float64 {
	switch g := goal.(type) {
	case LinkGoal:
		return g.FreqHz
	case CoverageGoal:
		return g.FreqHz
	case SensingGoal:
		return g.FreqHz
	case PowerGoal:
		return g.FreqHz
	case SecurityGoal:
		return g.FreqHz
	}
	return 0
}

// active reports whether the task competes for resources.
func (t *Task) active() bool {
	return t.State == TaskPending || t.State == TaskRunning
}
