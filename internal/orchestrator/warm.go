package orchestrator

import (
	"fmt"
	"strings"
)

// Warm starting: under churn, consecutive re-plans of a domain solve
// nearly identical problems. When Options.WarmStart is set, each
// reconcile snapshots the shard's committed plans (under the lock, with
// phase values deep-copied — plan entries mutate under the lock while
// shards schedule outside it) into a warm map, and the joint/TDM/SDM
// paths seed the optimizer from the matching previous entry instead of
// zero phases. A match requires the same frequency, the same surface
// set in the same order, and the same entry label (strategy name, or
// "task-N" for TDM slots), so a topology or membership change falls
// back to a cold start naturally.

// warmKey identifies one plan entry's optimization problem.
func warmKey(freqHz float64, surfaces []string, label string) string {
	return fmt.Sprintf("%g|%s|%s", freqHz, strings.Join(surfaces, ","), label)
}

// warmFromPlansLocked extracts the seedable phase sets from a shard's
// committed plans. Caller holds o.mu; values are copied so the snapshot
// survives concurrent entry release.
func warmFromPlansLocked(plans []*Plan) map[string][][]float64 {
	w := make(map[string][][]float64)
	for _, p := range plans {
		for _, e := range p.Entries {
			ph := make([][]float64, len(p.Surfaces))
			complete := true
			for i, id := range p.Surfaces {
				cfg, ok := e.Configs[id]
				if !ok {
					complete = false
					break
				}
				ph[i] = append([]float64(nil), cfg.Values...)
			}
			if complete {
				w[warmKey(p.FreqHz, p.Surfaces, e.Label)] = ph
			}
		}
	}
	return w
}

// warmLookup returns the previous phases for an optimization problem, or
// nil when there is no shape-compatible match (cold start).
func warmLookup(warm map[string][][]float64, freqHz float64, surfaces []string, label string, shape []int) [][]float64 {
	if warm == nil {
		return nil
	}
	ph, ok := warm[warmKey(freqHz, surfaces, label)]
	if !ok || len(ph) != len(shape) {
		return nil
	}
	for i, want := range shape {
		if len(ph[i]) != want {
			return nil
		}
	}
	return ph
}
