package rfsim

import (
	"fmt"
	"math/cmplx"
	"sync"

	"surfos/internal/em"
	"surfos/internal/surface"
)

// Channel is the analytic decomposition of one tx→rx link at one frequency
// as a function of the surface configurations:
//
//	h(x) = Direct + Σ_s Σ_k Single[s][k]·x_sk + Σ_blocks Σ_km M_km·x_Ak·x_Bm
//
// where x_sk = e^{jφ_sk} is element k of surface s's phasor.
type Channel struct {
	Freq   float64
	Direct complex128
	// Single[s][k] is the one-bounce coefficient of element k of surface s.
	Single [][]complex128
	// Cross holds two-surface cascade blocks (ordered: tx→A→B→rx).
	Cross []CrossBlock
}

// CrossBlock is the cascade coefficient matrix for an ordered surface pair.
type CrossBlock struct {
	A, B int
	M    [][]complex128 // M[k][m]: via element k of A then element m of B
}

// Phasors converts per-surface phase configurations into element phasor
// vectors x_sk = e^{jφ_sk}. Configurations must be phase-property and match
// the coefficient shapes.
func (ch *Channel) Phasors(cfgs []surface.Config) ([][]complex128, error) {
	var b em.PhasorBuf
	return ch.phasorsInto(&b, cfgs)
}

// phasorsInto validates cfgs and converts them through a reusable buffer.
func (ch *Channel) phasorsInto(b *em.PhasorBuf, cfgs []surface.Config) ([][]complex128, error) {
	if len(cfgs) != len(ch.Single) {
		return nil, fmt.Errorf("rfsim: %d configs for %d surfaces", len(cfgs), len(ch.Single))
	}
	b.Reset(len(cfgs))
	for s, cfg := range cfgs {
		if cfg.Property != surface.Phase {
			return nil, fmt.Errorf("rfsim: surface %d config has property %v, want phase", s, cfg.Property)
		}
		if len(cfg.Values) != len(ch.Single[s]) {
			return nil, fmt.Errorf("rfsim: surface %d config has %d values, want %d",
				s, len(cfg.Values), len(ch.Single[s]))
		}
		b.Append(cfg.Values)
	}
	return b.Rows(), nil
}

// phasorPool recycles conversion scratch across Eval calls. Heatmap-style
// workloads evaluate hundreds of channels per pass (often concurrently via
// the engine worker pool), so per-call phasor allocation dominated the
// profile; pooling makes steady-state Eval allocation-free and keeps it safe
// for concurrent use across goroutines.
var phasorPool = sync.Pool{New: func() any { return new(em.PhasorBuf) }}

// Eval computes h for the given per-surface phase configurations.
func (ch *Channel) Eval(cfgs []surface.Config) (complex128, error) {
	b := phasorPool.Get().(*em.PhasorBuf)
	x, err := ch.phasorsInto(b, cfgs)
	if err != nil {
		phasorPool.Put(b)
		return 0, err
	}
	h := ch.EvalPhasors(x)
	phasorPool.Put(b)
	return h, nil
}

// EvalPhasors computes h from precomputed element phasors (hot path for
// optimizers, which update x incrementally).
func (ch *Channel) EvalPhasors(x [][]complex128) complex128 {
	h := ch.Direct
	for s, coeffs := range ch.Single {
		xs := x[s]
		for k, c := range coeffs {
			if c != 0 {
				h += c * xs[k]
			}
		}
	}
	for _, blk := range ch.Cross {
		xa, xb := x[blk.A], x[blk.B]
		for k, row := range blk.M {
			if xa[k] == 0 {
				continue
			}
			var acc complex128
			for m, c := range row {
				if c != 0 {
					acc += c * xb[m]
				}
			}
			h += xa[k] * acc
		}
	}
	return h
}

// Partials returns dh/dφ_sk for every element, given the phasors x:
//
//	dh/dφ_sk = j·x_sk·( Single[s][k]
//	                  + Σ_{blocks A=s} Σ_m M[k][m]·x_Bm
//	                  + Σ_{blocks B=s} Σ_k' M[k'][k]·x_Ak' )
//
// The result is shaped like Single. Cost is O(total elements + cross size).
func (ch *Channel) Partials(x [][]complex128) [][]complex128 {
	return ch.PartialsInto(x, nil)
}

// PartialsInto is Partials with caller-owned scratch: when out already has
// the channel's shape its storage is reused, otherwise a fresh buffer is
// allocated. It returns the buffer actually used, so optimizer loops can
// thread one gradient scratch through every call.
func (ch *Channel) PartialsInto(x, out [][]complex128) [][]complex128 {
	if len(out) != len(ch.Single) {
		out = make([][]complex128, len(ch.Single))
	}
	for s, coeffs := range ch.Single {
		if len(out[s]) != len(coeffs) {
			out[s] = make([]complex128, len(coeffs))
		}
		copy(out[s], coeffs)
	}
	for _, blk := range ch.Cross {
		xa, xb := x[blk.A], x[blk.B]
		da, db := out[blk.A], out[blk.B]
		for k, row := range blk.M {
			var acc complex128
			for m, c := range row {
				if c == 0 {
					continue
				}
				acc += c * xb[m]
				db[m] += c * xa[k]
			}
			da[k] += acc
		}
	}
	for s := range out {
		xs := x[s]
		for k := range out[s] {
			out[s][k] *= complex(0, 1) * xs[k]
		}
	}
	return out
}

// Freeze folds surface s's configuration into the channel, returning a new
// channel over the remaining degrees of freedom: s's single terms join
// Direct, and cross blocks touching s fold into the other surface's single
// coefficients. The frozen surface's Single entry becomes empty (it no
// longer has free parameters) so config slices keep their indexing.
func (ch *Channel) Freeze(s int, cfg surface.Config) (*Channel, error) {
	if s < 0 || s >= len(ch.Single) {
		return nil, fmt.Errorf("rfsim: freeze index %d out of range", s)
	}
	if len(cfg.Values) != len(ch.Single[s]) {
		return nil, fmt.Errorf("rfsim: freeze config has %d values, want %d",
			len(cfg.Values), len(ch.Single[s]))
	}
	xs := make([]complex128, len(cfg.Values))
	for k, phi := range cfg.Values {
		xs[k] = cmplx.Rect(1, phi)
	}

	out := &Channel{Freq: ch.Freq, Direct: ch.Direct, Single: make([][]complex128, len(ch.Single))}
	for i, coeffs := range ch.Single {
		if i == s {
			out.Single[i] = nil
			for k, c := range coeffs {
				out.Direct += c * xs[k]
			}
			continue
		}
		d := make([]complex128, len(coeffs))
		copy(d, coeffs)
		out.Single[i] = d
	}
	for _, blk := range ch.Cross {
		switch {
		case blk.A == s && blk.B == s:
			// Impossible by construction (A != B); skip defensively.
		case blk.A == s:
			dst := out.Single[blk.B]
			for k, row := range blk.M {
				for m, c := range row {
					if c != 0 {
						dst[m] += c * xs[k]
					}
				}
			}
		case blk.B == s:
			dst := out.Single[blk.A]
			for k, row := range blk.M {
				var acc complex128
				for m, c := range row {
					if c != 0 {
						acc += c * xs[m]
					}
				}
				dst[k] += acc
			}
		default:
			cp := CrossBlock{A: blk.A, B: blk.B, M: make([][]complex128, len(blk.M))}
			for k, row := range blk.M {
				r := make([]complex128, len(row))
				copy(r, row)
				cp.M[k] = r
			}
			out.Cross = append(out.Cross, cp)
		}
	}
	return out, nil
}

// Pin folds a subset of surface s's elements into the channel at fixed
// phases — the stuck-element counterpart of Freeze. The pinned elements'
// one-bounce terms join Direct and their cascade terms fold into the other
// surface's single coefficients; their own coefficients become zero, so the
// remaining channel is exact over the healthy degrees of freedom and any
// value later supplied for a pinned element is ignored (its gradient is
// identically zero). Shapes are preserved: config slices keep their
// indexing.
func (ch *Channel) Pin(s int, stuck map[int]float64) (*Channel, error) {
	if s < 0 || s >= len(ch.Single) {
		return nil, fmt.Errorf("rfsim: pin surface %d out of range", s)
	}
	xs := make(map[int]complex128, len(stuck))
	for k, phi := range stuck {
		if k < 0 || k >= len(ch.Single[s]) {
			return nil, fmt.Errorf("rfsim: pin element %d out of range", k)
		}
		xs[k] = cmplx.Rect(1, phi)
	}

	out := &Channel{Freq: ch.Freq, Direct: ch.Direct, Single: make([][]complex128, len(ch.Single))}
	for i, coeffs := range ch.Single {
		d := make([]complex128, len(coeffs))
		copy(d, coeffs)
		if i == s {
			for k, x := range xs {
				out.Direct += d[k] * x
				d[k] = 0
			}
		}
		out.Single[i] = d
	}
	for _, blk := range ch.Cross {
		cp := CrossBlock{A: blk.A, B: blk.B, M: make([][]complex128, len(blk.M))}
		for k, row := range blk.M {
			r := make([]complex128, len(row))
			copy(r, row)
			cp.M[k] = r
		}
		switch {
		case blk.A == s:
			dst := out.Single[blk.B]
			for k, x := range xs {
				for m, c := range cp.M[k] {
					if c != 0 {
						dst[m] += c * x
						cp.M[k][m] = 0
					}
				}
			}
		case blk.B == s:
			dst := out.Single[blk.A]
			for k, row := range cp.M {
				for m, x := range xs {
					if c := row[m]; c != 0 {
						dst[k] += c * x
						row[m] = 0
					}
				}
			}
		}
		out.Cross = append(out.Cross, cp)
	}
	return out, nil
}

// NumElements returns the per-surface element counts of the decomposition.
func (ch *Channel) NumElements() []int {
	n := make([]int, len(ch.Single))
	for i, s := range ch.Single {
		n[i] = len(s)
	}
	return n
}
