package rfsim

import (
	"fmt"

	"surfos/internal/em"
)

// Evaluator is an incremental evaluation session over one channel: it caches
// the element phasors and the current h(x), and prices single-element phase
// moves as deltas instead of re-summing the whole decomposition.
//
// For a channel without cross blocks a trial is O(1):
//
//	h' = h + c_sk·(x'_sk − x_sk)
//
// With cross blocks, a move of element k on surface s additionally touches
// row k of every block with A==s and column k of every block with B==s, so a
// trial costs O(row+column) per affected block — still independent of the
// total element count.
//
// Protocol: TryDelta prices a move and makes it pending; Commit applies the
// pending move to the cached state; Revert discards it. Only one move may be
// pending at a time — a second TryDelta replaces the first. An Evaluator is
// not safe for concurrent use.
type Evaluator struct {
	ch *Channel
	x  [][]complex128 // committed element phasors (owned by the session)
	h  complex128     // committed channel value

	pending bool
	ps, pk  int        // pending element
	px      complex128 // pending phasor
	ph      complex128 // pending channel value
}

// NewEvaluator opens a session positioned at the given per-surface phases
// (shaped like the channel's Single coefficients).
func (ch *Channel) NewEvaluator(phases [][]float64) (*Evaluator, error) {
	if len(phases) != len(ch.Single) {
		return nil, fmt.Errorf("rfsim: %d phase vectors for %d surfaces", len(phases), len(ch.Single))
	}
	x := make([][]complex128, len(phases))
	for s, ps := range phases {
		if len(ps) != len(ch.Single[s]) {
			return nil, fmt.Errorf("rfsim: surface %d has %d phases, want %d", s, len(ps), len(ch.Single[s]))
		}
		xs := make([]complex128, len(ps))
		em.FillPhasors(xs, ps)
		x[s] = xs
	}
	return &Evaluator{ch: ch, x: x, h: ch.EvalPhasors(x)}, nil
}

// H returns the committed channel value.
func (e *Evaluator) H() complex128 { return e.h }

// Clone returns an independent session positioned at this session's
// committed state. The clone owns its own phasor cache, so the two
// sessions may be driven concurrently by different goroutines; a pending
// (uncommitted) trial on the receiver is not carried over. Replaying the
// same TryDelta/Commit sequence on a clone reproduces the original's
// state bit-for-bit — the worker-synchronization invariant behind
// parallel optimizer sweeps.
func (e *Evaluator) Clone() *Evaluator {
	x := make([][]complex128, len(e.x))
	for s, xs := range e.x {
		c := make([]complex128, len(xs))
		copy(c, xs)
		x[s] = c
	}
	return &Evaluator{ch: e.ch, x: x, h: e.h}
}

// Independent reports whether single-element moves touch disjoint state:
// true when the channel has no cross blocks, so h is affine in each
// phasor with a constant coefficient. Parallel sweep schedulers use this
// as a batching hint (speculation stays cheap when commits don't ripple
// through cascade rows).
func (e *Evaluator) Independent() bool { return len(e.ch.Cross) == 0 }

// TryDelta returns h with element k of surface s moved to newPhase, without
// committing. The move becomes the pending trial.
func (e *Evaluator) TryDelta(s, k int, newPhase float64) complex128 {
	px := em.PhaseShift(newPhase)
	dx := px - e.x[s][k]
	dh := e.ch.Single[s][k] * dx
	for _, blk := range e.ch.Cross {
		if blk.A == s {
			xb := e.x[blk.B]
			var acc complex128
			for m, c := range blk.M[k] {
				if c != 0 {
					acc += c * xb[m]
				}
			}
			dh += acc * dx
		}
		if blk.B == s {
			xa := e.x[blk.A]
			var acc complex128
			for k2, row := range blk.M {
				if c := row[k]; c != 0 {
					acc += xa[k2] * c
				}
			}
			dh += acc * dx
		}
	}
	e.pending, e.ps, e.pk, e.px, e.ph = true, s, k, px, e.h+dh
	return e.ph
}

// Commit applies the pending trial to the cached state.
func (e *Evaluator) Commit() {
	if !e.pending {
		return
	}
	e.x[e.ps][e.pk] = e.px
	e.h = e.ph
	e.pending = false
}

// Revert discards the pending trial.
func (e *Evaluator) Revert() { e.pending = false }
