package rfsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"surfos/internal/em"
)

// synthChannel builds a random decomposition over the given shape; with
// cross set, every ordered surface pair gets a cascade block so the
// row/column delta paths are all exercised.
func synthChannel(r *rand.Rand, shape []int, cross bool) *Channel {
	ch := &Channel{Freq: 24e9, Direct: complex(r.NormFloat64(), r.NormFloat64()) * 1e-6}
	ch.Single = make([][]complex128, len(shape))
	for s, n := range shape {
		v := make([]complex128, n)
		for k := range v {
			v[k] = complex(r.NormFloat64(), r.NormFloat64()) * 1e-5
		}
		ch.Single[s] = v
	}
	if cross {
		for a := range shape {
			for b := range shape {
				if a == b || shape[a] == 0 || shape[b] == 0 {
					continue
				}
				m := make([][]complex128, shape[a])
				for k := range m {
					row := make([]complex128, shape[b])
					for j := range row {
						row[j] = complex(r.NormFloat64(), r.NormFloat64()) * 1e-7
					}
					m[k] = row
				}
				ch.Cross = append(ch.Cross, CrossBlock{A: a, B: b, M: m})
			}
		}
	}
	return ch
}

func synthPhases(r *rand.Rand, shape []int) [][]float64 {
	p := make([][]float64, len(shape))
	for s, n := range shape {
		p[s] = make([]float64, n)
		for k := range p[s] {
			p[s][k] = r.Float64() * 2 * math.Pi
		}
	}
	return p
}

func evalFull(ch *Channel, phases [][]float64) complex128 {
	x := make([][]complex128, len(phases))
	for s, ps := range phases {
		x[s] = make([]complex128, len(ps))
		em.FillPhasors(x[s], ps)
	}
	return ch.EvalPhasors(x)
}

// TestEvaluatorDeltaParity drives a long random Try/Commit/Revert sequence
// and checks every trial against a from-scratch evaluation.
func TestEvaluatorDeltaParity(t *testing.T) {
	for _, cross := range []bool{false, true} {
		r := rand.New(rand.NewSource(11))
		shape := []int{5, 4, 3}
		ch := synthChannel(r, shape, cross)
		phases := synthPhases(r, shape)
		ev, err := ch.NewEvaluator(phases)
		if err != nil {
			t.Fatal(err)
		}
		if d := cmplx.Abs(ev.H() - evalFull(ch, phases)); d > 1e-15 {
			t.Fatalf("cross=%v: initial H off by %g", cross, d)
		}
		for i := 0; i < 300; i++ {
			s := r.Intn(len(shape))
			k := r.Intn(shape[s])
			phi := r.Float64() * 2 * math.Pi
			got := ev.TryDelta(s, k, phi)

			old := phases[s][k]
			phases[s][k] = phi
			want := evalFull(ch, phases)
			if d := cmplx.Abs(got - want); d > 1e-12 {
				t.Fatalf("cross=%v step %d: trial off by %g", cross, i, d)
			}
			if r.Intn(2) == 0 {
				ev.Commit()
				if d := cmplx.Abs(ev.H() - want); d > 1e-12 {
					t.Fatalf("cross=%v step %d: committed H off by %g", cross, i, d)
				}
			} else {
				ev.Revert()
				phases[s][k] = old
				if d := cmplx.Abs(ev.H() - evalFull(ch, phases)); d > 1e-12 {
					t.Fatalf("cross=%v step %d: reverted H off by %g", cross, i, d)
				}
			}
		}
	}
}

// TestEvaluatorPendingReplaced checks that a second TryDelta replaces the
// first pending move rather than stacking on top of it.
func TestEvaluatorPendingReplaced(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	shape := []int{4, 4}
	ch := synthChannel(r, shape, true)
	phases := synthPhases(r, shape)
	ev, err := ch.NewEvaluator(phases)
	if err != nil {
		t.Fatal(err)
	}
	ev.TryDelta(0, 1, 2.5) // abandoned
	ev.TryDelta(1, 2, 0.7)
	ev.Commit()
	phases[1][2] = 0.7
	if d := cmplx.Abs(ev.H() - evalFull(ch, phases)); d > 1e-12 {
		t.Fatalf("pending move stacked instead of replaced: off by %g", d)
	}
}

func TestEvaluatorCommitRevertWithoutPending(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	shape := []int{3}
	ch := synthChannel(r, shape, false)
	phases := synthPhases(r, shape)
	ev, err := ch.NewEvaluator(phases)
	if err != nil {
		t.Fatal(err)
	}
	h := ev.H()
	ev.Commit() // no-op
	ev.Revert() // no-op
	if ev.H() != h {
		t.Error("Commit/Revert without a pending trial changed the state")
	}
}

func TestNewEvaluatorShapeValidation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ch := synthChannel(r, []int{3, 2}, false)
	if _, err := ch.NewEvaluator([][]float64{{0, 0, 0}}); err == nil {
		t.Error("wrong surface count accepted")
	}
	if _, err := ch.NewEvaluator([][]float64{{0, 0, 0}, {0}}); err == nil {
		t.Error("wrong element count accepted")
	}
}

// TestEvaluatorCloneReplayBitIdentical drives the same random move sequence
// through an original session and a clone taken mid-stream: the clone must
// start bit-identical to the original's committed state, stay bit-identical
// under replay, and share nothing (a pending trial on one side must not
// leak into the other).
func TestEvaluatorCloneReplayBitIdentical(t *testing.T) {
	for _, cross := range []bool{false, true} {
		r := rand.New(rand.NewSource(23))
		shape := []int{5, 4, 3}
		ch := synthChannel(r, shape, cross)
		ev, err := ch.NewEvaluator(synthPhases(r, shape))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := ev.Independent(), !cross; got != want {
			t.Fatalf("cross=%v: Independent() = %v", cross, got)
		}

		// A pending trial must not be carried into a clone.
		ev.TryDelta(0, 0, 1.0)
		cl := ev.Clone()
		if cl.H() != ev.H() {
			t.Fatalf("cross=%v: clone H %v != committed H %v", cross, cl.H(), ev.H())
		}
		ev.Revert()

		for i := 0; i < 200; i++ {
			s := r.Intn(len(shape))
			k := r.Intn(shape[s])
			phi := r.Float64() * 2 * math.Pi
			a := ev.TryDelta(s, k, phi)
			b := cl.TryDelta(s, k, phi)
			if a != b {
				t.Fatalf("cross=%v step %d: trial diverged: %v vs %v", cross, i, a, b)
			}
			if r.Intn(2) == 0 {
				ev.Commit()
				cl.Commit()
			} else {
				ev.Revert()
				cl.Revert()
			}
			if ev.H() != cl.H() {
				t.Fatalf("cross=%v step %d: committed state diverged", cross, i)
			}
		}

		// Committing on the original must not disturb the clone.
		before := cl.H()
		ev.TryDelta(0, 1, 2.5)
		ev.Commit()
		if cl.H() != before {
			t.Fatalf("cross=%v: original commit leaked into clone", cross)
		}
	}
}
