package rfsim

import (
	"math"
	"math/cmplx"

	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/surface"
)

// LinkBudget carries the radio parameters that turn a complex channel gain
// into SNR and capacity. The zero value is not useful; use DefaultBudget as
// a starting point.
type LinkBudget struct {
	TxPowerDBm    float64
	AntennaGainDB float64 // combined tx+rx antenna gains
	NoiseFigureDB float64
	BandwidthHz   float64
}

// DefaultBudget matches a typical indoor mmWave small cell: 10 dBm transmit
// power, 20 dB combined beamforming gain, 7 dB noise figure, 400 MHz
// channel.
func DefaultBudget() LinkBudget {
	return LinkBudget{TxPowerDBm: 10, AntennaGainDB: 20, NoiseFigureDB: 7, BandwidthHz: 400e6}
}

// RxPowerDBm returns the received power for channel gain h.
func (lb LinkBudget) RxPowerDBm(h complex128) float64 {
	p := cmplx.Abs(h)
	return lb.TxPowerDBm + lb.AntennaGainDB + em.DB(p*p)
}

// NoiseFloorDBm returns the effective noise power.
func (lb LinkBudget) NoiseFloorDBm() float64 {
	return em.ThermalNoiseDBm(lb.BandwidthHz) + lb.NoiseFigureDB
}

// SNRdB returns the link SNR for channel gain h.
func (lb LinkBudget) SNRdB(h complex128) float64 {
	return lb.RxPowerDBm(h) - lb.NoiseFloorDBm()
}

// CapacityBps returns the Shannon capacity for channel gain h.
func (lb LinkBudget) CapacityBps(h complex128) float64 {
	return em.ShannonCapacity(lb.SNRdB(h), lb.BandwidthHz)
}

// SNRGrid evaluates the SNR at every point for fixed configurations; this
// is the paper's coverage heatmap primitive (Figures 2 and 4).
func SNRGrid(tc *TxContext, pts []geom.Vec3, cfgs []surface.Config, lb LinkBudget) ([]float64, error) {
	out := make([]float64, len(pts))
	for i, p := range pts {
		ch := tc.Channel(p)
		h, err := ch.Eval(cfgs)
		if err != nil {
			return nil, err
		}
		out[i] = lb.SNRdB(h)
	}
	return out, nil
}

// Median returns the median of vals (NaNs excluded); the paper's Figure 4
// reports median SNR over the target room.
func Median(vals []float64) float64 {
	clean := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sortFloats(clean)
	n := len(clean)
	if n%2 == 1 {
		return clean[n/2]
	}
	return (clean[n/2-1] + clean[n/2]) / 2
}

// CDF returns (sorted values, cumulative fractions) for plotting the
// paper's Figure 5 CDFs over locations.
func CDF(vals []float64) (xs, fracs []float64) {
	xs = make([]float64, len(vals))
	copy(xs, vals)
	sortFloats(xs)
	fracs = make([]float64, len(xs))
	for i := range xs {
		fracs[i] = float64(i+1) / float64(len(xs))
	}
	return xs, fracs
}

// Percentile returns the p-th percentile (0..100) of vals.
func Percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(vals))
	copy(s, vals)
	sortFloats(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	idx := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return s[lo]
	}
	t := idx - float64(lo)
	return s[lo]*(1-t) + s[hi]*t
}

// sortFloats is an insertion-free quicksort over float64 (avoids pulling in
// sort for the hot grid paths; grids are a few hundred points).
func sortFloats(v []float64) {
	if len(v) < 2 {
		return
	}
	// Simple bottom-up heapsort: O(n log n), no allocation, deterministic.
	n := len(v)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(v, i, n)
	}
	for i := n - 1; i > 0; i-- {
		v[0], v[i] = v[i], v[0]
		siftDown(v, 0, i)
	}
}

func siftDown(v []float64, lo, hi int) {
	root := lo
	for {
		child := 2*root + 1
		if child >= hi {
			return
		}
		if child+1 < hi && v[child] < v[child+1] {
			child++
		}
		if v[root] >= v[child] {
			return
		}
		v[root], v[child] = v[child], v[root]
		root = child
	}
}
