// Package rfsim is the SurfOS wireless channel simulator — the stand-in
// for the AutoMS simulator the paper uses (§4). It computes complex
// baseband channel gains between endpoints in a scene, decomposed so that
// surface configurations enter analytically:
//
//	h(φ) = h_env + Σ_s Σ_k single[s][k]·e^{jφ_sk}
//	             + Σ_{s,t} Σ_{k,m} cross[s,t][k][m]·e^{j(φ_sk+φ_tm)}
//
// h_env collects the environment paths (line of sight plus specular wall
// reflections via the image method, with material reflection and
// penetration losses). The single terms are one-bounce surface paths
// (tx→element→rx) under the physical-optics element model, and the cross
// terms are two-surface cascades (tx→surface A→surface B→rx). Because the
// decomposition is linear (bilinear for cascades) in the element phasors,
// ray tracing runs once per geometry and every optimizer evaluation or
// gradient is closed-form.
package rfsim

import (
	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/scene"
)

// EnvPath is one traced environment (non-surface) path.
type EnvPath struct {
	Gain   complex128
	Length float64
	Walls  []int // indices of reflecting walls, in bounce order
	// FirstHit is the first geometric waypoint after the transmitter (the
	// receiver itself for line of sight); it defines the departure
	// direction for transmit antenna patterns.
	FirstHit geom.Vec3
}

// envPaths traces line-of-sight and specular reflection paths between a and
// b at freqHz, up to the given reflection order. txPattern, when non-nil,
// scales each path by the transmitter's amplitude pattern at its departure
// direction.
func envPaths(sc *scene.Scene, a, b geom.Vec3, freqHz float64, order int, txPattern func(geom.Vec3) float64) []EnvPath {
	lambda := em.Wavelength(freqHz)
	var paths []EnvPath
	depart := func(toward geom.Vec3) float64 {
		if txPattern == nil {
			return 1
		}
		return txPattern(toward.Sub(a))
	}

	// Line of sight (with penetration through any intervening walls).
	if d := a.Dist(b); d > geom.Eps {
		g := sc.SegmentGain(a, b, freqHz) * depart(b)
		if g > 0 {
			paths = append(paths, EnvPath{
				Gain:     em.PropagationPhasor(d, lambda) * complex(g, 0),
				Length:   d,
				FirstHit: b,
			})
		}
	}

	if order >= 1 {
		for wi := range sc.Walls {
			if p, ok := reflectOnce(sc, a, b, wi, freqHz); ok {
				p.Gain *= complex(depart(p.FirstHit), 0)
				paths = append(paths, p)
			}
		}
	}
	if order >= 2 {
		for wi := range sc.Walls {
			for wj := range sc.Walls {
				if wi == wj {
					continue
				}
				if p, ok := reflectTwice(sc, a, b, wi, wj, freqHz); ok {
					p.Gain *= complex(depart(p.FirstHit), 0)
					paths = append(paths, p)
				}
			}
		}
	}
	return paths
}

// reflectOnce builds the single-bounce path a→wall wi→b using the image
// method: mirror a across the wall plane, intersect the straight image→b
// segment with the wall panel, then validate both real segments.
func reflectOnce(sc *scene.Scene, a, b geom.Vec3, wi int, freqHz float64) (EnvPath, bool) {
	w := sc.Walls[wi]
	pl := w.Panel.Plane()
	// Both endpoints must be on the same side for a specular bounce.
	da, db := pl.SignedDist(a), pl.SignedDist(b)
	if da*db <= 0 {
		return EnvPath{}, false
	}
	img := pl.Mirror(a)
	r := geom.NewRay(img, b)
	maxT := img.Dist(b)
	_, hit, ok := w.Panel.IntersectRay(r, maxT+geom.Eps)
	if !ok {
		return EnvPath{}, false
	}
	lambda := em.Wavelength(freqHz)
	total := a.Dist(hit) + hit.Dist(b)
	g := w.Material.Reflection(freqHz)
	if g <= 0 {
		return EnvPath{}, false
	}
	g *= occlusionExcluding(sc, a, hit, freqHz, wi)
	g *= occlusionExcluding(sc, hit, b, freqHz, wi)
	if g <= 0 {
		return EnvPath{}, false
	}
	return EnvPath{
		Gain:     em.PropagationPhasor(total, lambda) * complex(g, 0),
		Length:   total,
		Walls:    []int{wi},
		FirstHit: hit,
	}, true
}

// reflectTwice builds the two-bounce path a→wi→wj→b by double mirroring.
func reflectTwice(sc *scene.Scene, a, b geom.Vec3, wi, wj int, freqHz float64) (EnvPath, bool) {
	w1, w2 := sc.Walls[wi], sc.Walls[wj]
	pl1, pl2 := w1.Panel.Plane(), w2.Panel.Plane()

	img1 := pl1.Mirror(a)    // a mirrored across first wall
	img2 := pl2.Mirror(img1) // then across second wall

	// Unfold back-to-front: find the hit on wall 2 from b, then on wall 1.
	r2 := geom.NewRay(img2, b)
	_, hit2, ok := w2.Panel.IntersectRay(r2, img2.Dist(b)+geom.Eps)
	if !ok {
		return EnvPath{}, false
	}
	r1 := geom.NewRay(img1, hit2)
	_, hit1, ok := w1.Panel.IntersectRay(r1, img1.Dist(hit2)+geom.Eps)
	if !ok {
		return EnvPath{}, false
	}
	// Validate bounce sides: a and hit2 on the same side of wall 1,
	// hit1 and b on the same side of wall 2.
	if pl1.SignedDist(a)*pl1.SignedDist(hit2) <= 0 {
		return EnvPath{}, false
	}
	if pl2.SignedDist(hit1)*pl2.SignedDist(b) <= 0 {
		return EnvPath{}, false
	}
	lambda := em.Wavelength(freqHz)
	total := a.Dist(hit1) + hit1.Dist(hit2) + hit2.Dist(b)
	g := w1.Material.Reflection(freqHz) * w2.Material.Reflection(freqHz)
	if g <= 0 {
		return EnvPath{}, false
	}
	g *= occlusionExcluding(sc, a, hit1, freqHz, wi)
	g *= occlusionExcluding(sc, hit1, hit2, freqHz, wi, wj)
	g *= occlusionExcluding(sc, hit2, b, freqHz, wj)
	if g <= 0 {
		return EnvPath{}, false
	}
	return EnvPath{
		Gain:     em.PropagationPhasor(total, lambda) * complex(g, 0),
		Length:   total,
		Walls:    []int{wi, wj},
		FirstHit: hit1,
	}, true
}

// occlusionExcluding is scene.SegmentGain but ignoring the listed walls
// (the ones the path legitimately bounces off).
func occlusionExcluding(sc *scene.Scene, a, b geom.Vec3, freqHz float64, exclude ...int) float64 {
	g := 1.0
	for _, wi := range sc.Occlusions(a, b) {
		skip := false
		for _, e := range exclude {
			if wi == e {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		g *= sc.Walls[wi].Material.Transmission(freqHz)
		if g == 0 {
			return 0
		}
	}
	return g
}

// EnvGain sums the environment paths into a single complex gain.
// txPattern (nil = isotropic) applies the transmitter's antenna pattern.
func EnvGain(sc *scene.Scene, a, b geom.Vec3, freqHz float64, order int, txPattern func(geom.Vec3) float64) complex128 {
	var h complex128
	for _, p := range envPaths(sc, a, b, freqHz, order, txPattern) {
		h += p.Gain
	}
	return h
}
