package rfsim

import (
	"fmt"
	"math"

	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// Simulator computes channels in a scene populated with metasurfaces.
// It is safe for concurrent use once constructed (all methods are reads).
type Simulator struct {
	Scene    *scene.Scene
	Surfaces []*surface.Surface
	// FreqHz is the default carrier frequency.
	FreqHz float64
	// ReflOrder is the image-method order for environment paths (0 = LoS
	// only, 1 = one bounce, 2 = two bounces). Default 1.
	ReflOrder int
	// PerElementOcclusion enables exact blockage tests for every element
	// leg. When false (default) blockage is tested once per surface panel
	// center and shared by all elements — a large speedup for dense
	// surfaces with identical visibility.
	PerElementOcclusion bool
	// Cascade enables two-surface interaction paths (tx→A→B→rx). Required
	// for multi-surface collaboration studies; off by default.
	Cascade bool
	// ElementEfficiency scales each surface interaction amplitude
	// (hardware losses). Zero means 1.0.
	ElementEfficiency float64
	// TxPattern is the transmitter's antenna amplitude pattern by
	// departure direction (nil = isotropic). mmWave APs beamform toward
	// their serving surface; modeling the pattern is what makes "no
	// coverage without surfaces" physical.
	TxPattern func(dir geom.Vec3) float64
}

// ConeBeam returns an idealized beamforming pattern: mainGainDB amplitude
// gain within halfWidth radians of the boresight direction, sideGainDB
// elsewhere. Gains are in dB (power); the returned factor is amplitude.
func ConeBeam(boresight geom.Vec3, halfWidth, mainGainDB, sideGainDB float64) func(geom.Vec3) float64 {
	bs := boresight.Normalize()
	main := math.Sqrt(em.FromDB(mainGainDB))
	side := math.Sqrt(em.FromDB(sideGainDB))
	return func(dir geom.Vec3) float64 {
		if bs.AngleTo(dir) <= halfWidth {
			return main
		}
		return side
	}
}

// New constructs a simulator with validated inputs and defaults applied.
func New(sc *scene.Scene, freqHz float64, surfaces ...*surface.Surface) (*Simulator, error) {
	if sc == nil {
		return nil, fmt.Errorf("rfsim: nil scene")
	}
	if freqHz <= 0 {
		return nil, fmt.Errorf("rfsim: frequency %g must be positive", freqHz)
	}
	for i, s := range surfaces {
		if s == nil {
			return nil, fmt.Errorf("rfsim: surface %d is nil", i)
		}
	}
	return &Simulator{
		Scene:     sc,
		Surfaces:  surfaces,
		FreqHz:    freqHz,
		ReflOrder: 1,
	}, nil
}

func (sim *Simulator) efficiency() float64 {
	if sim.ElementEfficiency == 0 {
		return 1
	}
	return sim.ElementEfficiency
}

// sideOK reports whether a point at direction d (from element, unit not
// required) participates given the surface mode, and returns the pattern
// angle cos sign handling. For reflective surfaces the point must be on the
// +normal side; for transmissive on either side (energy passes through);
// transflective accepts both.
func sideOK(mode surface.OpMode, n, toPoint geom.Vec3) bool {
	front := n.Dot(toPoint) > 0
	switch {
	case mode == surface.Reflective:
		return front
	case mode == surface.Transmissive:
		return true // both sides interact; pattern handles the angle
	default: // transflective
		return true
	}
}

// patternAngle returns the angle from the surface boresight axis for a
// direction to a point, folding the back side onto the front for
// transmissive interaction.
func patternAngle(n, toPoint geom.Vec3) float64 {
	th := n.AngleTo(toPoint)
	if th > math.Pi/2 {
		th = math.Pi - th
	}
	return th
}

// legAmp returns the complex propagation factor of a free-space leg a→b
// including wall penetration, or 0 if fully blocked.
func (sim *Simulator) legAmp(a, b geom.Vec3, freqHz float64, occl float64) complex128 {
	d := a.Dist(b)
	if d < geom.Eps || occl <= 0 {
		return 0
	}
	return em.PropagationPhasor(d, em.Wavelength(freqHz)) * complex(occl, 0)
}

// surfOcclusion returns per-element occlusion gains for legs from point p
// to every element of surface s. With PerElementOcclusion off, the panel
// center's occlusion is shared.
func (sim *Simulator) surfOcclusion(p geom.Vec3, s *surface.Surface, freqHz float64) []float64 {
	n := s.NumElements()
	out := make([]float64, n)
	if !sim.PerElementOcclusion {
		g := sim.Scene.SegmentGain(p, s.Panel.Center(), freqHz)
		for i := range out {
			out[i] = g
		}
		return out
	}
	for i, e := range s.ElementPositions() {
		out[i] = sim.Scene.SegmentGain(p, e, freqHz)
	}
	return out
}

// TxContext caches everything about a transmitter position that does not
// depend on the receiver: incident legs onto every surface element and
// (when Cascade is on) the surface-to-surface coupling matrices. Building a
// TxContext performs the expensive ray tracing once; Channel() calls are
// then cheap per receiver.
type TxContext struct {
	sim  *Simulator
	Tx   geom.Vec3
	Freq float64

	// incident[s][k]: complex amplitude arriving at element k of surface s
	// directly from tx, with the incoming pattern already applied.
	incident [][]complex128
	// crossIn[a][b][k][m]: amplitude arriving at element m of surface b via
	// element k of surface a (tx→a_k→b_m), with a_k's full scatter and
	// b_m's incoming pattern applied, but NOT a_k's or b_m's phase config.
	// Indexed by ordered surface pairs a != b. nil when Cascade is off.
	crossIn map[[2]int][][]complex128
}

// scatterK returns the dimensionless element scatter constant 4π·dA/λ².
func scatterK(s *surface.Surface, freqHz float64) float64 {
	lambda := em.Wavelength(freqHz)
	dA := s.Layout.PitchU * s.Layout.PitchV
	return 4 * math.Pi * dA / (lambda * lambda)
}

// NewTx builds the transmitter-side cache at the simulator's default
// frequency.
func (sim *Simulator) NewTx(tx geom.Vec3) *TxContext { return sim.NewTxAt(tx, sim.FreqHz) }

// NewTxAt builds the transmitter-side cache at an explicit frequency
// (wideband sensing uses several subcarriers).
func (sim *Simulator) NewTxAt(tx geom.Vec3, freqHz float64) *TxContext {
	tc := &TxContext{sim: sim, Tx: tx, Freq: freqHz}
	eff := complex(sim.efficiency(), 0)

	tc.incident = make([][]complex128, len(sim.Surfaces))
	for si, s := range sim.Surfaces {
		inc := make([]complex128, s.NumElements())
		occ := sim.surfOcclusion(tx, s, freqHz)
		n := s.Normal()
		for k, e := range s.ElementPositions() {
			toTx := tx.Sub(e)
			if !sideOK(s.Mode, n, toTx) {
				continue
			}
			patt := s.Pattern.AmplitudeAt(patternAngle(n, toTx))
			if patt == 0 {
				continue
			}
			txp := 1.0
			if sim.TxPattern != nil {
				txp = sim.TxPattern(e.Sub(tx))
			}
			inc[k] = sim.legAmp(tx, e, freqHz, occ[k]) * complex(patt*txp, 0) * eff
		}
		tc.incident[si] = inc
	}

	if sim.Cascade && len(sim.Surfaces) > 1 {
		tc.crossIn = make(map[[2]int][][]complex128)
		for a := range sim.Surfaces {
			for b := range sim.Surfaces {
				if a == b {
					continue
				}
				if m := tc.buildCross(a, b, freqHz); m != nil {
					tc.crossIn[[2]int{a, b}] = m
				}
			}
		}
	}
	return tc
}

// buildCross computes the tx→a→b incident matrix, or nil if the surfaces
// cannot interact (wrong sides / fully blocked).
func (tc *TxContext) buildCross(a, b int, freqHz float64) [][]complex128 {
	sim := tc.sim
	sa, sb := sim.Surfaces[a], sim.Surfaces[b]
	na, nb := sa.Normal(), sb.Normal()
	ka := scatterK(sa, freqHz)

	// Cheap visibility rejection: panel centers must see each other.
	centerGain := sim.Scene.SegmentGain(sa.Panel.Center(), sb.Panel.Center(), freqHz)
	if centerGain == 0 {
		return nil
	}

	posA, posB := sa.ElementPositions(), sb.ElementPositions()
	out := make([][]complex128, len(posA))
	any := false
	for k, ea := range posA {
		incA := tc.incident[a][k]
		row := make([]complex128, len(posB))
		out[k] = row
		if incA == 0 {
			continue
		}
		for m, eb := range posB {
			toB := eb.Sub(ea)
			if !sideOK(sa.Mode, na, toB) || !sideOK(sb.Mode, nb, toB.Neg()) {
				continue
			}
			pOut := sa.Pattern.AmplitudeAt(patternAngle(na, toB))
			pIn := sb.Pattern.AmplitudeAt(patternAngle(nb, toB.Neg()))
			if pOut == 0 || pIn == 0 {
				continue
			}
			leg := sim.legAmp(ea, eb, freqHz, centerGain)
			if leg == 0 {
				continue
			}
			row[m] = incA * complex(ka*pOut*pIn, 0) * leg
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// IncidentCoeffs returns a copy of the incident complex amplitudes at each
// element of surface s (leg from the cached transmitter plus the incoming
// pattern). By reciprocity these are also the element→transmitter radiation
// legs, which the sensing layer uses to build AoA steering dictionaries.
func (tc *TxContext) IncidentCoeffs(s int) []complex128 {
	out := make([]complex128, len(tc.incident[s]))
	copy(out, tc.incident[s])
	return out
}

// Channel computes the full channel decomposition from the cached
// transmitter to receiver rx.
func (tc *TxContext) Channel(rx geom.Vec3) *Channel {
	sim := tc.sim
	ch := &Channel{
		Freq:   tc.Freq,
		Direct: EnvGain(sim.Scene, tc.Tx, rx, tc.Freq, sim.ReflOrder, sim.TxPattern),
		Single: make([][]complex128, len(sim.Surfaces)),
	}

	// Outgoing factors per surface element toward rx.
	radiate := make([][]complex128, len(sim.Surfaces))
	for si, s := range sim.Surfaces {
		rad := make([]complex128, s.NumElements())
		occ := sim.surfOcclusion(rx, s, tc.Freq)
		n := s.Normal()
		k := scatterK(s, tc.Freq)
		for i, e := range s.ElementPositions() {
			toRx := rx.Sub(e)
			if !sideOK(s.Mode, n, toRx) {
				continue
			}
			patt := s.Pattern.AmplitudeAt(patternAngle(n, toRx))
			if patt == 0 {
				continue
			}
			rad[i] = complex(k*patt, 0) * sim.legAmp(e, rx, tc.Freq, occ[i])
		}
		radiate[si] = rad

		single := make([]complex128, s.NumElements())
		for i := range single {
			single[i] = tc.incident[si][i] * rad[i]
		}
		ch.Single[si] = single
	}

	for pair, w := range tc.crossIn {
		b := pair[1]
		radB := radiate[b]
		blk := CrossBlock{A: pair[0], B: b, M: make([][]complex128, len(w))}
		for k, row := range w {
			out := make([]complex128, len(row))
			for m, v := range row {
				if v != 0 && radB[m] != 0 {
					out[m] = v * radB[m]
				}
			}
			blk.M[k] = out
		}
		ch.Cross = append(ch.Cross, blk)
	}
	return ch
}
