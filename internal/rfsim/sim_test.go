package rfsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// emptyScene has no walls: pure free space.
func emptyScene() *scene.Scene { return scene.New("empty") }

func mkSurface(t *testing.T, name string, panel *geom.Quad, rows, cols int, mode surface.OpMode) *surface.Surface {
	t.Helper()
	pitch := em.Wavelength(em.Band24G) / 2
	s, err := surface.New(name, panel, surface.Layout{Rows: rows, Cols: cols, PitchU: pitch, PitchV: pitch}, mode, em.CosinePattern{Q: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFreeSpaceLoSMatchesFriis(t *testing.T) {
	sim, err := New(emptyScene(), em.Band24G)
	if err != nil {
		t.Fatal(err)
	}
	a, b := geom.V(0, 0, 1), geom.V(3, 4, 1) // distance 5
	h := EnvGain(sim.Scene, a, b, sim.FreqHz, sim.ReflOrder, nil)
	want := em.PropagationPhasor(5, em.Wavelength(em.Band24G))
	if cmplx.Abs(h-want) > 1e-15 {
		t.Errorf("LoS gain = %v, want %v", h, want)
	}
}

func TestSingleReflectionImageMethod(t *testing.T) {
	// Metal wall at y=2 spanning a large panel; endpoints at y=0.
	sc := scene.New("mirror")
	sc.AddWall("m", geom.RectXY(geom.V(-10, 2, -10), geom.V(1, 0, 0), geom.V(0, 0, 1), 20, 20), em.Metal)
	a, b := geom.V(-1, 0, 0), geom.V(1, 0, 0)

	paths := envPaths(sc, a, b, em.Band2G4, 1, nil)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (LoS + 1 bounce)", len(paths))
	}
	// Reflected path length: a→(0,2,0)→b = 2·√(1+4).
	wantLen := 2 * math.Sqrt(5)
	var refl *EnvPath
	for i := range paths {
		if len(paths[i].Walls) == 1 {
			refl = &paths[i]
		}
	}
	if refl == nil {
		t.Fatal("no reflected path found")
	}
	if math.Abs(refl.Length-wantLen) > 1e-9 {
		t.Errorf("reflected length = %v, want %v", refl.Length, wantLen)
	}
	wantGain := em.FSPLGain(wantLen, em.Wavelength(em.Band2G4)) * em.Metal.Reflection(em.Band2G4)
	if math.Abs(cmplx.Abs(refl.Gain)-wantGain) > 1e-12 {
		t.Errorf("reflected |gain| = %v, want %v", cmplx.Abs(refl.Gain), wantGain)
	}
}

func TestReflectionRequiresSameSide(t *testing.T) {
	sc := scene.New("mirror")
	sc.AddWall("m", geom.RectXY(geom.V(-10, 2, -10), geom.V(1, 0, 0), geom.V(0, 0, 1), 20, 20), em.Metal)
	// Endpoints on opposite sides: no specular bounce (only penetration LoS).
	paths := envPaths(sc, geom.V(0, 0, 0), geom.V(0, 4, 0), em.Band2G4, 1, nil)
	for _, p := range paths {
		if len(p.Walls) > 0 {
			t.Errorf("unexpected bounce path across the wall: %+v", p)
		}
	}
}

func TestTwoBouncePathCorridor(t *testing.T) {
	// Two parallel metal walls; a two-bounce path must exist.
	sc := scene.New("corridor")
	sc.AddWall("top", geom.RectXY(geom.V(-10, 1, -10), geom.V(1, 0, 0), geom.V(0, 0, 1), 20, 20), em.Metal)
	sc.AddWall("bot", geom.RectXY(geom.V(-10, -1, -10), geom.V(1, 0, 0), geom.V(0, 0, 1), 20, 20), em.Metal)
	paths := envPaths(sc, geom.V(-2, 0, 0), geom.V(2, 0, 0), em.Band2G4, 2, nil)
	var n2 int
	for _, p := range paths {
		if len(p.Walls) == 2 {
			n2++
			// Two-bounce path is longer than LoS.
			if p.Length <= 4 {
				t.Errorf("2-bounce length %v should exceed LoS 4", p.Length)
			}
		}
	}
	if n2 < 2 {
		t.Errorf("got %d two-bounce paths, want >= 2 (up-down and down-up)", n2)
	}
}

func TestSteeredSurfaceCoherentGain(t *testing.T) {
	// A reflective surface steered from src to dst must achieve
	// |h_surf| = Σ_k |c_k| (perfect coherent combining), and that value
	// must match the physical-optics aperture estimate.
	panel := geom.RectXY(geom.V(0.2, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.4, 0.4)
	s := mkSurface(t, "s", panel, 16, 16, surface.Reflective)
	sim, err := New(emptyScene(), em.Band24G, s)
	if err != nil {
		t.Fatal(err)
	}
	src := geom.V(-1, 3, 1.2) // front side (+y)
	dst := geom.V(1.5, 2, 1.0)

	tc := sim.NewTx(src)
	ch := tc.Channel(dst)

	cfg := s.SteeringConfig(src, dst, em.Band24G)
	h, err := ch.Eval([]surface.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	hs := h - ch.Direct

	var coherent float64
	for _, c := range ch.Single[0] {
		coherent += cmplx.Abs(c)
	}
	if math.Abs(cmplx.Abs(hs)-coherent) > 1e-9*coherent {
		t.Errorf("steered |h_surf| = %v, want coherent sum %v", cmplx.Abs(hs), coherent)
	}

	// Off config (flat mirror) must combine far worse than steering for an
	// off-specular receiver.
	hOff, err := ch.Eval([]surface.Config{s.Off()})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(hOff-ch.Direct) > 0.9*coherent {
		t.Errorf("unsteered surface nearly coherent: %v vs %v", cmplx.Abs(hOff-ch.Direct), coherent)
	}

	// Order-of-magnitude physical check: coherent gain ≈ A·cosθ/(4π d1 d2).
	d1 := src.Dist(panel.Center())
	d2 := dst.Dist(panel.Center())
	approx := s.AreaM2() / (4 * math.Pi * d1 * d2) // cos factors ≤ 1
	if coherent > approx || coherent < approx/10 {
		t.Errorf("coherent gain %v implausible vs aperture bound %v", coherent, approx)
	}
}

func TestReflectiveSurfaceIgnoresBackside(t *testing.T) {
	panel := geom.RectXY(geom.V(0.2, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.4, 0.4)
	s := mkSurface(t, "s", panel, 4, 4, surface.Reflective)
	sim, _ := New(emptyScene(), em.Band24G, s)

	// Tx on the back side (-y): no incident coupling.
	tc := sim.NewTx(geom.V(0, -3, 1))
	ch := tc.Channel(geom.V(1, 2, 1))
	for k, c := range ch.Single[0] {
		if c != 0 {
			t.Fatalf("backside tx coupled through element %d: %v", k, c)
		}
	}
	// Rx on the back side: no radiated coupling.
	tc2 := sim.NewTx(geom.V(0, 3, 1))
	ch2 := tc2.Channel(geom.V(0, -2, 1))
	for k, c := range ch2.Single[0] {
		if c != 0 {
			t.Fatalf("backside rx coupled through element %d: %v", k, c)
		}
	}
}

func TestTransmissiveSurfacePassesThrough(t *testing.T) {
	panel := geom.RectXY(geom.V(0.2, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.4, 0.4)
	s := mkSurface(t, "s", panel, 4, 4, surface.Transmissive)
	sim, _ := New(emptyScene(), em.Band24G, s)

	tc := sim.NewTx(geom.V(0, -3, 1)) // behind
	ch := tc.Channel(geom.V(0, 3, 1)) // in front
	var any bool
	for _, c := range ch.Single[0] {
		if c != 0 {
			any = true
		}
	}
	if !any {
		t.Error("transmissive surface did not couple through")
	}
}

func TestOcclusionBlocksSurfacePath(t *testing.T) {
	// Metal screen between tx and the surface kills the surface path.
	sc := scene.New("blocked")
	sc.AddWall("screen", geom.RectXY(geom.V(-5, 1.5, -5), geom.V(1, 0, 0), geom.V(0, 0, 1), 10, 10), em.Metal)
	panel := geom.RectXY(geom.V(0.2, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.4, 0.4)
	s := mkSurface(t, "s", panel, 4, 4, surface.Reflective)
	sim, _ := New(sc, em.Band24G, s)

	tc := sim.NewTx(geom.V(0, 3, 1)) // beyond the screen from the surface
	ch := tc.Channel(geom.V(1, 1, 1))
	for k, c := range ch.Single[0] {
		if c != 0 {
			t.Fatalf("blocked element %d still coupled: %v", k, c)
		}
	}
}

func TestPerElementOcclusionMatchesCenterWhenUniform(t *testing.T) {
	// In an empty scene both occlusion modes are identical.
	panel := geom.RectXY(geom.V(0.2, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.4, 0.4)
	s := mkSurface(t, "s", panel, 4, 4, surface.Reflective)

	simA, _ := New(emptyScene(), em.Band24G, s)
	simB, _ := New(emptyScene(), em.Band24G, s)
	simB.PerElementOcclusion = true

	src, dst := geom.V(-1, 3, 1.2), geom.V(1.5, 2, 1.0)
	chA := simA.NewTx(src).Channel(dst)
	chB := simB.NewTx(src).Channel(dst)
	for k := range chA.Single[0] {
		if cmplx.Abs(chA.Single[0][k]-chB.Single[0][k]) > 1e-18 {
			t.Fatalf("occlusion modes disagree at element %d", k)
		}
	}
}

func twoSurfaceSim(t *testing.T) (*Simulator, *surface.Surface, *surface.Surface) {
	t.Helper()
	// Two small reflective surfaces facing each other obliquely.
	pa := geom.RectXY(geom.V(0.1, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.2, 0.2) // faces +y
	pb := geom.RectXY(geom.V(2, 2.1, 1), geom.V(0, -1, 0), geom.V(0, 0, 1), 0.2, 0.2) // faces -x? check below
	// pb: origin (2,2.1,1), u=(0,-1,0), v=(0,0,1) → normal = u×v = (-1,0,0): faces -x. Good.
	a := mkSurface(t, "a", pa, 3, 3, surface.Reflective)
	b := mkSurface(t, "b", pb, 3, 3, surface.Reflective)
	sim, err := New(emptyScene(), em.Band24G, a, b)
	if err != nil {
		t.Fatal(err)
	}
	sim.Cascade = true
	return sim, a, b
}

func TestCascadeBlocksExist(t *testing.T) {
	sim, _, _ := twoSurfaceSim(t)
	tc := sim.NewTx(geom.V(-1, 1, 1))
	ch := tc.Channel(geom.V(0.5, 3, 1))
	if len(ch.Cross) == 0 {
		t.Fatal("no cascade blocks between mutually visible surfaces")
	}
	var any bool
	for _, blk := range ch.Cross {
		for _, row := range blk.M {
			for _, c := range row {
				if c != 0 {
					any = true
				}
			}
		}
	}
	if !any {
		t.Error("cascade blocks are all zero")
	}
}

func randConfigs(r *rand.Rand, ch *Channel) []surface.Config {
	cfgs := make([]surface.Config, len(ch.Single))
	for s := range cfgs {
		vals := make([]float64, len(ch.Single[s]))
		for k := range vals {
			vals[k] = r.Float64() * 2 * math.Pi
		}
		cfgs[s] = surface.Config{Property: surface.Phase, Values: vals}
	}
	return cfgs
}

func TestPartialsMatchNumericalGradient(t *testing.T) {
	sim, _, _ := twoSurfaceSim(t)
	tc := sim.NewTx(geom.V(-1, 1, 1))
	ch := tc.Channel(geom.V(0.5, 3, 1))

	r := rand.New(rand.NewSource(42))
	cfgs := randConfigs(r, ch)
	x, err := ch.Phasors(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	got := ch.Partials(x)

	const eps = 1e-6
	for s := range cfgs {
		for k := range cfgs[s].Values {
			plus := cfgs[s].Clone()
			minus := cfgs[s].Clone()
			plus.Values[k] += eps
			minus.Values[k] -= eps
			cp := append([]surface.Config{}, cfgs...)
			cp[s] = plus
			hp, _ := ch.Eval(cp)
			cp[s] = minus
			hm, _ := ch.Eval(cp)
			num := (hp - hm) / complex(2*eps, 0)
			if cmplx.Abs(num-got[s][k]) > 1e-6*(1+cmplx.Abs(num)) {
				t.Fatalf("partial s=%d k=%d: analytic %v numeric %v", s, k, got[s][k], num)
			}
		}
	}
}

func TestFreezeEquivalence(t *testing.T) {
	sim, _, _ := twoSurfaceSim(t)
	tc := sim.NewTx(geom.V(-1, 1, 1))
	ch := tc.Channel(geom.V(0.5, 3, 1))

	r := rand.New(rand.NewSource(7))
	cfgs := randConfigs(r, ch)

	full, err := ch.Eval(cfgs)
	if err != nil {
		t.Fatal(err)
	}

	frozen, err := ch.Freeze(0, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := frozen.Eval([]surface.Config{{Property: surface.Phase}, cfgs[1]})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(got-full) > 1e-12*(1+cmplx.Abs(full)) {
		t.Errorf("freeze(0): %v != full %v", got, full)
	}

	// Freeze the other surface too.
	frozen2, err := ch.Freeze(1, cfgs[1])
	if err != nil {
		t.Fatal(err)
	}
	got2, err := frozen2.Eval([]surface.Config{cfgs[0], {Property: surface.Phase}})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(got2-full) > 1e-12*(1+cmplx.Abs(full)) {
		t.Errorf("freeze(1): %v != full %v", got2, full)
	}
}

func TestFreezeErrors(t *testing.T) {
	ch := &Channel{Single: [][]complex128{{1, 2}}}
	if _, err := ch.Freeze(3, surface.Config{}); err == nil {
		t.Error("out-of-range freeze accepted")
	}
	if _, err := ch.Freeze(0, surface.Config{Values: []float64{1}}); err == nil {
		t.Error("wrong-size freeze accepted")
	}
}

func TestEvalErrors(t *testing.T) {
	ch := &Channel{Single: [][]complex128{{1, 2}}}
	if _, err := ch.Eval(nil); err == nil {
		t.Error("wrong config count accepted")
	}
	if _, err := ch.Eval([]surface.Config{{Property: surface.Amplitude, Values: []float64{0, 0}}}); err == nil {
		t.Error("non-phase property accepted")
	}
	if _, err := ch.Eval([]surface.Config{{Property: surface.Phase, Values: []float64{0}}}); err == nil {
		t.Error("wrong value count accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, em.Band24G); err == nil {
		t.Error("nil scene accepted")
	}
	if _, err := New(emptyScene(), -1); err == nil {
		t.Error("negative frequency accepted")
	}
	if _, err := New(emptyScene(), em.Band24G, nil); err == nil {
		t.Error("nil surface accepted")
	}
}

func TestLinkBudget(t *testing.T) {
	lb := LinkBudget{TxPowerDBm: 10, AntennaGainDB: 20, NoiseFigureDB: 7, BandwidthHz: 400e6}
	// Noise: -174 + 10log10(4e8) ≈ -87.98, +7 NF → -80.98.
	if got := lb.NoiseFloorDBm(); math.Abs(got+80.98) > 0.01 {
		t.Errorf("noise floor = %v", got)
	}
	h := complex(1e-5, 0) // -100 dB
	if got := lb.RxPowerDBm(h); math.Abs(got-(10+20-100)) > 1e-9 {
		t.Errorf("rx power = %v", got)
	}
	if got := lb.SNRdB(h); math.Abs(got-(-70+80.98)) > 0.01 {
		t.Errorf("snr = %v", got)
	}
	if lb.CapacityBps(h) <= 0 {
		t.Error("capacity should be positive at positive SNR")
	}
}

func TestMedianCDFPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if got := Median(vals); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median should be NaN")
	}
	if got := Median([]float64{math.NaN(), 7}); got != 7 {
		t.Errorf("median with NaN = %v, want 7", got)
	}

	xs, fr := CDF([]float64{3, 1, 2})
	if xs[0] != 1 || xs[2] != 3 {
		t.Errorf("cdf xs = %v", xs)
	}
	if fr[2] != 1 || math.Abs(fr[0]-1.0/3) > 1e-12 {
		t.Errorf("cdf fracs = %v", fr)
	}

	if got := Percentile(vals, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(vals, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(vals, 25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestSNRGrid(t *testing.T) {
	panel := geom.RectXY(geom.V(0.2, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.4, 0.4)
	s := mkSurface(t, "s", panel, 8, 8, surface.Reflective)
	sim, _ := New(emptyScene(), em.Band24G, s)
	tc := sim.NewTx(geom.V(-1, 3, 1.2))
	pts := []geom.Vec3{geom.V(1, 2, 1), geom.V(1.5, 2.5, 1)}
	cfg := s.SteeringConfig(geom.V(-1, 3, 1.2), pts[0], em.Band24G)
	snrs, err := SNRGrid(tc, pts, []surface.Config{cfg}, DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(snrs) != 2 {
		t.Fatalf("got %d snrs", len(snrs))
	}
	// The steered point should beat the unsteered one.
	if snrs[0] <= snrs[1] {
		t.Errorf("steered SNR %v not above other point %v", snrs[0], snrs[1])
	}
}

func TestConeBeamPattern(t *testing.T) {
	beam := ConeBeam(geom.V(1, 0, 0), 10*math.Pi/180, 20, -5)
	// Boresight gets the main amplitude (20 dB power = 10x amplitude).
	if got := beam(geom.V(5, 0, 0)); math.Abs(got-10) > 1e-9 {
		t.Errorf("boresight amp = %v, want 10", got)
	}
	// Just inside the cone.
	in := geom.V(math.Cos(9*math.Pi/180), math.Sin(9*math.Pi/180), 0)
	if got := beam(in); math.Abs(got-10) > 1e-9 {
		t.Errorf("in-cone amp = %v", got)
	}
	// Outside the cone: side amplitude (-5 dB power ≈ 0.562 amplitude).
	out := geom.V(0, 1, 0)
	if got := beam(out); math.Abs(got-math.Sqrt(em.FromDB(-5))) > 1e-9 {
		t.Errorf("side amp = %v", got)
	}
}

func TestTxPatternScalesSurfaceAndEnvPaths(t *testing.T) {
	panel := geom.RectXY(geom.V(0.2, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.4, 0.4)
	s := mkSurface(t, "s", panel, 4, 4, surface.Reflective)

	iso, _ := New(emptyScene(), em.Band24G, s)
	beamed, _ := New(emptyScene(), em.Band24G, s)
	tx := geom.V(0, 3, 1.2)
	// Beam straight at the panel: all elements within the cone.
	beamed.TxPattern = ConeBeam(panel.Center().Sub(tx), 30*math.Pi/180, 20, -40)

	rx := geom.V(1.5, 2, 1.0)
	chI := iso.NewTx(tx).Channel(rx)
	chB := beamed.NewTx(tx).Channel(rx)

	// Surface coefficients scale by the main-lobe amplitude (10x).
	for k := range chI.Single[0] {
		if chI.Single[0][k] == 0 {
			continue
		}
		ratio := cmplx.Abs(chB.Single[0][k]) / cmplx.Abs(chI.Single[0][k])
		if math.Abs(ratio-10) > 1e-6 {
			t.Fatalf("element %d beam ratio %v, want 10", k, ratio)
		}
	}
	// The rx sits off the beam: the LoS env path is attenuated, not boosted.
	if cmplx.Abs(chB.Direct) >= cmplx.Abs(chI.Direct) {
		t.Errorf("off-beam direct %v not attenuated vs %v", cmplx.Abs(chB.Direct), cmplx.Abs(chI.Direct))
	}
}

func TestEnvPathFirstHit(t *testing.T) {
	sc := scene.New("mirror")
	sc.AddWall("m", geom.RectXY(geom.V(-10, 2, -10), geom.V(1, 0, 0), geom.V(0, 0, 1), 20, 20), em.Metal)
	a, b := geom.V(-1, 0, 0), geom.V(1, 0, 0)
	for _, p := range envPaths(sc, a, b, em.Band2G4, 1, nil) {
		if len(p.Walls) == 0 {
			if p.FirstHit != b {
				t.Errorf("LoS first hit = %v, want %v", p.FirstHit, b)
			}
		} else {
			// The bounce point lies on the wall plane y=2.
			if math.Abs(p.FirstHit.Y-2) > 1e-9 {
				t.Errorf("bounce first hit = %v, want on y=2", p.FirstHit)
			}
		}
	}
}

func TestPerElementOcclusionPartialBlockage(t *testing.T) {
	// A narrow metal screen shadows only part of the panel: per-element
	// occlusion must zero exactly the shadowed elements while the
	// center-based approximation treats all elements alike.
	sc := scene.New("partial")
	// Screen in front of the panel's left half (x in [-0.25, 0]).
	sc.AddWall("screen", geom.RectXY(geom.V(-0.25, 1.0, 0), geom.V(1, 0, 0), geom.V(0, 0, 1), 0.25, 3), em.Metal)

	panel := geom.RectXY(geom.V(0.25, 0, 0.8), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.5, 0.4)
	s := mkSurface(t, "s", panel, 4, 8, surface.Reflective)

	sim, _ := New(sc, em.Band24G, s)
	sim.PerElementOcclusion = true
	tx := geom.V(0, 4, 1.0) // in front, far enough that rays to the left half cross the screen

	tc := sim.NewTx(tx)
	blocked, clear := 0, 0
	for _, c := range tc.IncidentCoeffs(0) {
		if c == 0 {
			blocked++
		} else {
			clear++
		}
	}
	if blocked == 0 || clear == 0 {
		t.Fatalf("expected a partial shadow: blocked=%d clear=%d", blocked, clear)
	}

	// The center-based approximation gives all-or-nothing.
	simC, _ := New(sc, em.Band24G, s)
	tcC := simC.NewTx(tx)
	zero := 0
	for _, c := range tcC.IncidentCoeffs(0) {
		if c == 0 {
			zero++
		}
	}
	if zero != 0 && zero != s.NumElements() {
		t.Errorf("center occlusion should be uniform, got %d/%d zero", zero, s.NumElements())
	}
}

func TestFreezeComposition(t *testing.T) {
	// Freezing both surfaces sequentially folds everything into Direct and
	// must equal the full evaluation.
	sim, _, _ := twoSurfaceSim(t)
	tc := sim.NewTx(geom.V(-1, 1, 1))
	ch := tc.Channel(geom.V(0.5, 3, 1))
	r := rand.New(rand.NewSource(21))
	cfgs := randConfigs(r, ch)
	full, err := ch.Eval(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := ch.Freeze(0, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	f01, err := f0.Freeze(1, cfgs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(f01.Cross) != 0 {
		t.Error("fully frozen channel still has cross blocks")
	}
	got, err := f01.Eval([]surface.Config{{Property: surface.Phase}, {Property: surface.Phase}})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(got-full) > 1e-12*(1+cmplx.Abs(full)) {
		t.Errorf("sequential freeze %v != full %v", got, full)
	}
	if cmplx.Abs(f01.Direct-full) > 1e-12*(1+cmplx.Abs(full)) {
		t.Errorf("frozen Direct %v != full %v", f01.Direct, full)
	}
}

func TestElementEfficiencyScalesCoefficients(t *testing.T) {
	panel := geom.RectXY(geom.V(0.2, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.4, 0.4)
	s := mkSurface(t, "s", panel, 4, 4, surface.Reflective)
	simFull, _ := New(emptyScene(), em.Band24G, s)
	simHalf, _ := New(emptyScene(), em.Band24G, s)
	simHalf.ElementEfficiency = 0.5

	src, dst := geom.V(-1, 3, 1.2), geom.V(1.5, 2, 1.0)
	cf := simFull.NewTx(src).Channel(dst)
	ch := simHalf.NewTx(src).Channel(dst)
	for k := range cf.Single[0] {
		if cf.Single[0][k] == 0 {
			continue
		}
		ratio := cmplx.Abs(ch.Single[0][k]) / cmplx.Abs(cf.Single[0][k])
		if math.Abs(ratio-0.5) > 1e-9 {
			t.Fatalf("element %d efficiency ratio %v, want 0.5", k, ratio)
		}
	}
	// The environment path is not a surface interaction: unscaled.
	if cmplx.Abs(ch.Direct-cf.Direct) > 1e-18 {
		t.Error("efficiency scaled the environment path")
	}
}
