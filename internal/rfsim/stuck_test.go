package rfsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"surfos/internal/geom"
	"surfos/internal/surface"
)

// pinnedCopy overwrites stuck indices of surface s in a fresh config slice.
func pinnedCopy(cfgs []surface.Config, s int, stuck map[int]float64) []surface.Config {
	out := make([]surface.Config, len(cfgs))
	for i, c := range cfgs {
		vals := append([]float64(nil), c.Values...)
		if i == s {
			for k, v := range stuck {
				vals[k] = v
			}
		}
		out[i] = surface.Config{Property: c.Property, Values: vals}
	}
	return out
}

// Pin must be exact: evaluating the pinned channel over the healthy degrees
// of freedom equals evaluating the full channel with the stuck values
// substituted, including through cascade blocks; and whatever value a
// caller later supplies for a pinned element is ignored.
func TestPinMatchesFullEvaluation(t *testing.T) {
	sim, _, _ := twoSurfaceSim(t)
	ch := sim.NewTx(geom.V(-1, 1, 1)).Channel(geom.V(0.5, 3, 1))
	if len(ch.Cross) == 0 {
		t.Fatal("fixture lost its cascade blocks")
	}
	r := rand.New(rand.NewSource(7))
	cfgs := randConfigs(r, ch)
	stuck := map[int]float64{0: math.Pi, 4: 1.0, 8: 0.25}

	pinned, err := ch.Pin(0, stuck)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ch.Eval(pinnedCopy(cfgs, 0, stuck))
	if err != nil {
		t.Fatal(err)
	}
	// Garble the stuck entries: the pinned channel must not read them.
	garbled := pinnedCopy(cfgs, 0, map[int]float64{0: 9, 4: -3, 8: 2.5})
	got, err := pinned.Eval(garbled)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(got-want) > 1e-15 {
		t.Fatalf("pinned eval %v != substituted full eval %v", got, want)
	}

	// Gradients of pinned elements vanish: optimizers cannot move them.
	x, err := pinned.Phasors(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	grads := pinned.Partials(x)
	for k := range stuck {
		if grads[0][k] != 0 {
			t.Errorf("pinned element %d has gradient %v", k, grads[0][k])
		}
	}
	for k := range grads[1] {
		if grads[1][k] != 0 {
			break
		}
		if k == len(grads[1])-1 {
			t.Error("healthy surface lost all gradients")
		}
	}

	// Pinning composes across surfaces.
	stuckB := map[int]float64{2: 0.5}
	both, err := pinned.Pin(1, stuckB)
	if err != nil {
		t.Fatal(err)
	}
	wantBoth, err := ch.Eval(pinnedCopy(pinnedCopy(cfgs, 0, stuck), 1, stuckB))
	if err != nil {
		t.Fatal(err)
	}
	gotBoth, err := both.Eval(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(gotBoth-wantBoth) > 1e-15 {
		t.Fatalf("chained pin %v != substituted eval %v", gotBoth, wantBoth)
	}
}

func TestPinValidation(t *testing.T) {
	sim, _, _ := twoSurfaceSim(t)
	ch := sim.NewTx(geom.V(-1, 1, 1)).Channel(geom.V(0.5, 3, 1))
	if _, err := ch.Pin(-1, nil); err == nil {
		t.Error("negative surface accepted")
	}
	if _, err := ch.Pin(5, nil); err == nil {
		t.Error("out-of-range surface accepted")
	}
	if _, err := ch.Pin(0, map[int]float64{99: 0}); err == nil {
		t.Error("out-of-range element accepted")
	}
	// Empty mask is a no-op clone.
	p, err := ch.Pin(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := randConfigs(rand.New(rand.NewSource(1)), ch)
	a, _ := ch.Eval(cfgs)
	b, _ := p.Eval(cfgs)
	if cmplx.Abs(a-b) > 1e-15 {
		t.Errorf("empty pin changed the channel: %v vs %v", a, b)
	}
}
