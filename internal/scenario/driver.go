package scenario

import (
	"context"
	"fmt"
	"time"

	"surfos/internal/geom"
	"surfos/internal/orchestrator"
	"surfos/internal/scene"
)

// Driver binds an Engine to a live orchestrator stack: it wires the
// virtual-clock hooks (orchestrator tick, governor poll) and provides
// the canned churn actions — task arrival and departure, a user walking
// their task across the floor, and scene edits — each of which marks the
// affected interference domains dirty on the governor instead of
// re-planning inline. Tasks are addressed by scenario-local names, since
// orchestrator IDs do not exist until the arrival event actually runs.
type Driver struct {
	Eng  *Engine
	Orch *orchestrator.Orchestrator
	// Gov rate-limits the re-plans the churn provokes. Nil runs ungoverned:
	// actions mark nothing and nothing polls (callers reconcile manually).
	Gov *orchestrator.Governor

	tasks    map[string]int
	handoffs int
}

// NewDriver wires a driver and installs the engine hooks.
func NewDriver(eng *Engine, orch *orchestrator.Orchestrator, gov *orchestrator.Governor) *Driver {
	d := &Driver{Eng: eng, Orch: orch, Gov: gov, tasks: make(map[string]int)}
	eng.OnAdvance = func(ctx context.Context, dt time.Duration) error {
		return orch.Tick(ctx, dt)
	}
	if gov != nil {
		eng.AfterEvent = func(ctx context.Context, now time.Time) error {
			_, err := gov.Poll(ctx, now)
			return err
		}
	}
	return d
}

// mark dirties one domain, when governed.
func (d *Driver) mark(domain int) {
	if d.Gov != nil {
		d.Gov.Mark(domain, d.Eng.Now())
	}
}

// TaskID resolves a scenario task name, once its arrival has run.
func (d *Driver) TaskID(name string) (int, bool) {
	id, ok := d.tasks[name]
	return id, ok
}

// Handoffs counts the domain-boundary crossings walks have caused.
func (d *Driver) Handoffs() int { return d.handoffs }

// Arrive schedules a task submission under a scenario-local name.
func (d *Driver) Arrive(at time.Duration, name string, kind orchestrator.ServiceKind, goal any, priority int) {
	d.Eng.At(at, "arrive "+name, func(ctx context.Context) (string, error) {
		t, err := d.Orch.Submit(ctx, kind, goal, priority)
		if err != nil {
			return "", err
		}
		d.tasks[name] = t.ID
		d.mark(t.Domain)
		return fmt.Sprintf("task %d in domain %d", t.ID, t.Domain), nil
	})
}

// Depart schedules the end of a named task.
func (d *Driver) Depart(at time.Duration, name string) {
	d.Eng.At(at, "depart "+name, func(ctx context.Context) (string, error) {
		id, ok := d.tasks[name]
		if !ok {
			return "", fmt.Errorf("scenario: depart %q before its arrival", name)
		}
		t, err := d.Orch.Task(id)
		if err != nil {
			return "", err
		}
		if err := d.Orch.EndTask(id); err != nil {
			return "", err
		}
		d.mark(t.Domain)
		return fmt.Sprintf("task %d from domain %d", id, t.Domain), nil
	})
}

// Walk schedules a step of a named task's user to a new position,
// handing the task off between shards when it crosses a domain boundary.
func (d *Driver) Walk(at time.Duration, name string, pos geom.Vec3) {
	d.Eng.At(at, "walk "+name, func(ctx context.Context) (string, error) {
		id, ok := d.tasks[name]
		if !ok {
			return "", fmt.Errorf("scenario: walk %q before its arrival", name)
		}
		res, err := d.Orch.MoveTask(id, pos)
		if err != nil {
			return "", err
		}
		d.mark(res.To)
		if res.HandedOff {
			d.handoffs++
			d.mark(res.From)
			return fmt.Sprintf("task %d handoff domain %d -> %d", id, res.From, res.To), nil
		}
		return fmt.Sprintf("task %d within domain %d", id, res.To), nil
	})
}

// Edit schedules a batched scene mutation (wall/door toggles, screens
// moving), dirtying exactly the listed interference domains — the
// per-region invalidation contract: domains the edit cannot reach keep
// serving their current plans and their cached traces stay hot.
func (d *Driver) Edit(at time.Duration, name string, domains []int, fn func(*scene.Scene) error) {
	d.Eng.At(at, name, func(ctx context.Context) (string, error) {
		if err := d.Orch.EditScene(fn); err != nil {
			return "", err
		}
		for _, dom := range domains {
			d.mark(dom)
		}
		return fmt.Sprintf("dirtied domains %v", domains), nil
	})
}

// Flush schedules a governor flush — the scenario epilogue that leaves
// no churn pending so final assertions see a settled plant.
func (d *Driver) Flush(at time.Duration) {
	d.Eng.At(at, "flush", func(ctx context.Context) (string, error) {
		if d.Gov == nil {
			return "", d.Orch.Reconcile(ctx)
		}
		return "", d.Gov.Flush(ctx, d.Eng.Now())
	})
}
