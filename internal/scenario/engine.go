// Package scenario is a deterministic discrete-event engine for driving
// a live SurfOS daemon stack through scripted churn: users walking
// between rooms, tasks arriving and departing on a Poisson process,
// walls and doors toggling, surfaces joining and leaving.
//
// The engine owns a virtual clock and a seeded RNG; events execute
// strictly in (time, insertion) order on the caller's goroutine, so the
// same seed replays the same timeline byte for byte. Wall-clock time
// never enters the loop: hooks advance the orchestrator's virtual clock
// and poll the replan governor at each event's virtual timestamp, which
// means a 10-minute mobility scenario runs in however long its
// optimizations take, and its rendered timeline is golden-checkable.
package scenario

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Epoch anchors the virtual clock. It matches the orchestrator's
// convention of starting its clock at the Unix epoch, so governor
// deadlines and task deadlines line up with scenario timestamps.
var Epoch = time.Unix(0, 0)

// Action is one scheduled event's body. The returned note is recorded on
// the timeline next to the event's name (empty for no annotation).
type Action func(ctx context.Context) (note string, err error)

// Record is one executed event on the timeline.
type Record struct {
	At   time.Duration
	Name string
	Note string
}

func (r Record) String() string {
	if r.Note == "" {
		return fmt.Sprintf("%8s  %s", r.At, r.Name)
	}
	return fmt.Sprintf("%8s  %-24s %s", r.At, r.Name, r.Note)
}

// event is one queued entry; seq breaks same-instant ties by insertion
// order so simultaneous events never reorder between runs.
type event struct {
	at   time.Duration
	seq  uint64
	name string
	do   Action
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is the discrete-event loop. Not safe for concurrent use: the
// whole point is a single deterministic thread of control.
type Engine struct {
	rng      *rand.Rand
	now      time.Duration
	seq      uint64
	q        eventQueue
	timeline []Record

	// OnAdvance fires whenever the clock moves forward, before the event
	// at the new instant runs — the place to tick the orchestrator's
	// virtual clock by the same dt.
	OnAdvance func(ctx context.Context, dt time.Duration) error
	// AfterEvent fires after every event body, with the current virtual
	// time — the place to poll a replan governor.
	AfterEvent func(ctx context.Context, now time.Time) error
}

// New creates an engine with a deterministic RNG.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Rand is the engine's seeded RNG. Draw everything random through it —
// and pre-draw at schedule time, not inside actions, when the draw count
// must not depend on runtime state.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Now is the current virtual time.
func (e *Engine) Now() time.Time { return Epoch.Add(e.now) }

// Elapsed is the virtual time since scenario start.
func (e *Engine) Elapsed() time.Duration { return e.now }

// At schedules an event. Scheduling in the past (from inside a running
// action) clamps to the current instant: the event runs next, it is
// never lost.
func (e *Engine) At(at time.Duration, name string, do Action) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.q, &event{at: at, seq: e.seq, name: name, do: do})
}

// Run drains the queue in (time, insertion) order. Actions may schedule
// further events. The first error — from a hook or an action — stops the
// run; the failing event is still recorded.
func (e *Engine) Run(ctx context.Context) error {
	for e.q.Len() > 0 {
		ev := heap.Pop(&e.q).(*event)
		if dt := ev.at - e.now; dt > 0 {
			e.now = ev.at
			if e.OnAdvance != nil {
				if err := e.OnAdvance(ctx, dt); err != nil {
					return fmt.Errorf("scenario: advance to %v: %w", ev.at, err)
				}
			}
		}
		note, err := ev.do(ctx)
		e.timeline = append(e.timeline, Record{At: ev.at, Name: ev.name, Note: note})
		if err != nil {
			return fmt.Errorf("scenario: %q at %v: %w", ev.name, ev.at, err)
		}
		if e.AfterEvent != nil {
			if err := e.AfterEvent(ctx, e.Now()); err != nil {
				return fmt.Errorf("scenario: after %q at %v: %w", ev.name, ev.at, err)
			}
		}
	}
	return nil
}

// Timeline is the executed-event log, in execution order.
func (e *Engine) Timeline() []Record { return e.timeline }

// PoissonTimes pre-draws a Poisson arrival process: offsets with
// exponentially distributed inter-arrival gaps of the given mean, within
// [0, horizon). Drawing every arrival up front at schedule time keeps
// the draw sequence — and therefore the whole timeline — independent of
// how actions consume the RNG while the scenario runs.
func PoissonTimes(rng *rand.Rand, mean, horizon time.Duration) []time.Duration {
	var out []time.Duration
	at := time.Duration(float64(mean) * rng.ExpFloat64())
	for at < horizon {
		out = append(out, at)
		at += time.Duration(float64(mean) * rng.ExpFloat64())
	}
	return out
}
