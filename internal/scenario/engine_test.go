package scenario

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func noop(ctx context.Context) (string, error) { return "", nil }

func TestRunOrdersEventsAndDrivesHooks(t *testing.T) {
	e := New(1)
	var order []string
	rec := func(name string) Action {
		return func(ctx context.Context) (string, error) {
			order = append(order, name)
			return "", nil
		}
	}
	// Scheduled out of order; b and c share an instant and must keep
	// insertion order.
	e.At(300*time.Millisecond, "d", rec("d"))
	e.At(100*time.Millisecond, "a", rec("a"))
	e.At(200*time.Millisecond, "b", rec("b"))
	e.At(200*time.Millisecond, "c", rec("c"))

	var advanced time.Duration
	var afters int
	e.OnAdvance = func(ctx context.Context, dt time.Duration) error {
		advanced += dt
		return nil
	}
	e.AfterEvent = func(ctx context.Context, now time.Time) error {
		afters++
		return nil
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "c", "d"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("execution order = %v, want %v", order, want)
	}
	if advanced != 300*time.Millisecond {
		t.Fatalf("OnAdvance total = %v, want 300ms", advanced)
	}
	if afters != 4 {
		t.Fatalf("AfterEvent fired %d times, want 4", afters)
	}
	if e.Now() != Epoch.Add(300*time.Millisecond) {
		t.Fatalf("final Now = %v", e.Now())
	}
	tl := e.Timeline()
	if len(tl) != 4 || tl[0].Name != "a" || tl[3].At != 300*time.Millisecond {
		t.Fatalf("timeline = %v", tl)
	}
}

func TestActionSchedulingInPastClampsToNow(t *testing.T) {
	e := New(1)
	var ran []string
	e.At(100*time.Millisecond, "first", func(ctx context.Context) (string, error) {
		// "Earlier" than now from inside the run: clamps, never lost.
		e.At(10*time.Millisecond, "late", func(ctx context.Context) (string, error) {
			ran = append(ran, "late")
			return "", nil
		})
		ran = append(ran, "first")
		return "", nil
	})
	e.At(200*time.Millisecond, "second", func(ctx context.Context) (string, error) {
		ran = append(ran, "second")
		return "", nil
	})
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if want := []string{"first", "late", "second"}; !reflect.DeepEqual(ran, want) {
		t.Fatalf("order = %v, want %v", ran, want)
	}
	if e.Timeline()[1].At != 100*time.Millisecond {
		t.Fatalf("clamped event at %v, want 100ms", e.Timeline()[1].At)
	}
}

func TestRunStopsOnFirstErrorAndRecordsIt(t *testing.T) {
	e := New(1)
	boom := errors.New("boom")
	e.At(10*time.Millisecond, "ok", noop)
	e.At(20*time.Millisecond, "bad", func(ctx context.Context) (string, error) {
		return "", boom
	})
	reached := false
	e.At(30*time.Millisecond, "never", func(ctx context.Context) (string, error) {
		reached = true
		return "", nil
	})
	err := e.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if reached {
		t.Fatal("event after the failure still ran")
	}
	if tl := e.Timeline(); len(tl) != 2 || tl[1].Name != "bad" {
		t.Fatalf("timeline = %v, want [ok bad]", tl)
	}
}

func TestPoissonTimesDeterministicAndBounded(t *testing.T) {
	horizon := 10 * time.Second
	a := PoissonTimes(New(42).Rand(), time.Second, horizon)
	b := PoissonTimes(New(42).Rand(), time.Second, horizon)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed drew different processes:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("10s horizon at 1/s mean drew no arrivals")
	}
	last := time.Duration(-1)
	for _, at := range a {
		if at <= last {
			t.Fatalf("arrivals not strictly increasing: %v", a)
		}
		if at >= horizon {
			t.Fatalf("arrival %v past horizon %v", at, horizon)
		}
		last = at
	}
	if c := PoissonTimes(New(7).Rand(), time.Second, horizon); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds drew the identical process")
	}
}
