package scene

import (
	"surfos/internal/em"
	"surfos/internal/geom"
)

// MountSpot is a pre-determined surface deployment location on a wall
// (§4 of the paper: "suitable pre-determined deployment locations").
// U runs along the wall, V runs up, Normal points into the room the surface
// serves. Center is the mount midpoint at typical install height.
type MountSpot struct {
	Name   string
	Center geom.Vec3
	U, V   geom.Vec3 // unit tangents along the wall (width, height)
	Normal geom.Vec3 // unit, into the room
}

// Panel returns a wall-flush rectangular panel of the given width and
// height (meters) centered on the mount spot, offset 1 cm off the wall so
// rays do not self-intersect the supporting wall.
func (m MountSpot) Panel(w, h float64) *geom.Quad {
	o := m.Center.
		Add(m.Normal.Scale(0.01)).
		Sub(m.U.Scale(w / 2)).
		Sub(m.V.Scale(h / 2))
	return geom.RectXY(o, m.U, m.V, w, h)
}

// Apartment is the two-room furnished apartment from the paper's §4
// exploratory studies: a living room holding the AP and an adjacent target
// bedroom, separated by a concrete wall with a doorway. mmWave signals
// cannot penetrate the divider, so bedroom coverage must flow through the
// door — exactly the regime where metasurfaces matter.
type Apartment struct {
	*Scene
	// AP is the access point position (living room, near the south wall).
	AP geom.Vec3
	// Mounts are the pre-determined surface deployment locations.
	Mounts map[string]MountSpot
}

// Apartment layout constants (meters).
const (
	AptW       = 7.0 // x extent
	AptD       = 7.0 // y extent
	AptH       = 3.0 // ceiling height
	DividerY   = 3.5 // the wall splitting living room (south) from bedroom
	DoorX0     = 4.0
	DoorX1     = 5.0
	DoorH      = 2.1
	EvalHeight = 1.2 // receiver evaluation height for heatmaps/CDFs
)

// Room region names.
const (
	RegionLivingRoom = "living_room"
	RegionTargetRoom = "target_room"
)

// Mount names.
const (
	MountEastWall  = "east_wall"  // bedroom east wall, sees the AP through the door
	MountNorthWall = "north_wall" // bedroom north wall, relay/steering spot
)

// NewApartment builds the apartment scene.
func NewApartment() *Apartment {
	s := New("two-room apartment")

	up := geom.V(0, 0, 1)
	// Outer shell (concrete). Corners at (0,0) and (AptW, AptD).
	s.AddWall("south", geom.RectXY(geom.V(0, 0, 0), geom.V(1, 0, 0), up, AptW, AptH), em.Concrete)
	s.AddWall("north", geom.RectXY(geom.V(0, AptD, 0), geom.V(1, 0, 0), up, AptW, AptH), em.Concrete)
	s.AddWall("west", geom.RectXY(geom.V(0, 0, 0), geom.V(0, 1, 0), up, AptD, AptH), em.Concrete)
	s.AddWall("east", geom.RectXY(geom.V(AptW, 0, 0), geom.V(0, 1, 0), up, AptD, AptH), em.Concrete)
	// Floor and ceiling (concrete) — mostly relevant as absorbers of stray
	// vertical paths.
	s.AddWall("floor", geom.MustQuad(
		geom.V(0, 0, 0), geom.V(AptW, 0, 0), geom.V(AptW, AptD, 0), geom.V(0, AptD, 0)), em.Concrete)
	s.AddWall("ceiling", geom.MustQuad(
		geom.V(0, 0, AptH), geom.V(AptW, 0, AptH), geom.V(AptW, AptD, AptH), geom.V(0, AptD, AptH)), em.Concrete)

	// Divider with a doorway: three concrete panels (left of door, right of
	// door, lintel above the door).
	s.AddWall("divider_left", geom.RectXY(geom.V(0, DividerY, 0), geom.V(1, 0, 0), up, DoorX0, AptH), em.Concrete)
	s.AddWall("divider_right", geom.RectXY(geom.V(DoorX1, DividerY, 0), geom.V(1, 0, 0), up, AptW-DoorX1, AptH), em.Concrete)
	s.AddWall("divider_lintel", geom.RectXY(geom.V(DoorX0, DividerY, DoorH), geom.V(1, 0, 0), up, DoorX1-DoorX0, AptH-DoorH), em.Concrete)

	// Furnishing: a wooden wardrobe along the bedroom west wall and a metal
	// cabinet in the living room; both add scattering/blockage.
	s.AddWall("wardrobe", geom.RectXY(geom.V(0.6, 4.2, 0), geom.V(0, 1, 0), up, 1.4, 1.9), em.Wood)
	s.AddWall("cabinet", geom.RectXY(geom.V(5.6, 1.0, 0), geom.V(0, 1, 0), up, 1.0, 1.5), em.Metal)

	s.AddRegion(RegionLivingRoom, geom.AABB{Min: geom.V(0.3, 0.3, 0), Max: geom.V(AptW-0.3, DividerY-0.3, AptH)})
	s.AddRegion(RegionTargetRoom, geom.AABB{Min: geom.V(0.3, DividerY+0.3, 0), Max: geom.V(AptW-0.3, AptD-0.3, AptH)})

	apt := &Apartment{
		Scene: s,
		// AP sits in the living room's south-west area at 2 m height,
		// with line of sight through the doorway into the bedroom.
		AP: geom.V(0.6, 0.4, 2.0),
		Mounts: map[string]MountSpot{
			// East-wall mount: visible from the AP through the doorway
			// (the primary coverage-extension spot).
			MountEastWall: {
				Name:   MountEastWall,
				Center: geom.V(AptW, 5.5, 1.8),
				U:      geom.V(0, -1, 0),
				V:      geom.V(0, 0, 1),
				Normal: geom.V(-1, 0, 0),
			},
			// North-wall mount: deeper in the bedroom, used by the
			// programmable steering surface in the hybrid deployment.
			MountNorthWall: {
				Name:   MountNorthWall,
				Center: geom.V(5.0, AptD, 1.8),
				U:      geom.V(1, 0, 0),
				V:      geom.V(0, 0, 1),
				Normal: geom.V(0, -1, 0),
			},
		},
	}
	return apt
}

// TargetGrid returns the evaluation locations inside the target room at the
// standard receiver height, spaced step meters.
func (a *Apartment) TargetGrid(step float64) []geom.Vec3 {
	r := a.Regions[RegionTargetRoom]
	return r.GridPoints(step, EvalHeight)
}
