package scene

import (
	"errors"
	"testing"

	"surfos/internal/em"
	"surfos/internal/geom"
)

func screenPanel(x float64) *geom.Quad {
	return geom.RectXY(geom.V(x, 1, 0), geom.V(0, 1, 0), geom.V(0, 0, 1), 2, 2.2)
}

func TestEditBatchBumpsRevisionOnce(t *testing.T) {
	s := New("edit")
	s.AddWall("a", screenPanel(1), em.Drywall)
	rev := s.Revision()

	err := s.Edit(func(s *Scene) error {
		s.AddWall("b", screenPanel(2), em.Drywall)
		if err := s.MoveWall("a", screenPanel(1.5)); err != nil {
			return err
		}
		return s.RemoveWall("b")
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Revision(); got != rev+1 {
		t.Fatalf("batched edit bumped revision %d times, want 1", got-rev)
	}
	bounds, ok := s.EditsSince(rev)
	if !ok {
		t.Fatal("EditsSince unknown after a journaled batch")
	}
	// AddWall(b) + MoveWall(a: old+new) + RemoveWall(b) = 4 dirty boxes.
	if len(bounds) != 4 {
		t.Fatalf("got %d dirty boxes, want 4", len(bounds))
	}
}

func TestEditCommitsEvenOnError(t *testing.T) {
	s := New("edit")
	rev := s.Revision()
	sentinel := errors.New("boom")
	err := s.Edit(func(s *Scene) error {
		s.AddWall("a", screenPanel(1), em.Drywall)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Edit error = %v, want sentinel", err)
	}
	if s.Revision() != rev+1 {
		t.Fatal("mutations made before the error must still bump the revision")
	}
}

func TestEditNestedFoldsIntoOneBump(t *testing.T) {
	s := New("edit")
	rev := s.Revision()
	err := s.Edit(func(s *Scene) error {
		s.AddWall("a", screenPanel(1), em.Drywall)
		return s.Edit(func(s *Scene) error {
			s.AddWall("b", screenPanel(2), em.Drywall)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Revision() != rev+1 {
		t.Fatalf("nested edits bumped revision %d times, want 1", s.Revision()-rev)
	}
}

func TestEditsSinceSemantics(t *testing.T) {
	s := New("edit")
	s.AddWall("a", screenPanel(1), em.Drywall)
	rev := s.Revision()

	if b, ok := s.EditsSince(rev); !ok || len(b) != 0 {
		t.Fatalf("no edits: got (%v, %v), want (nil, true)", b, ok)
	}
	if _, ok := s.EditsSince(rev + 5); ok {
		t.Fatal("a future revision must be unknown")
	}

	if err := s.MoveWall("a", screenPanel(2)); err != nil {
		t.Fatal(err)
	}
	if b, ok := s.EditsSince(rev); !ok || len(b) != 2 {
		t.Fatalf("after one move: got (%d boxes, %v), want (2, true)", len(b), ok)
	}

	// Invalidate's blast radius is unknowable: everything after it is
	// global.
	s.Invalidate()
	if _, ok := s.EditsSince(rev); ok {
		t.Fatal("history crossing an Invalidate must be unknown")
	}
	rev2 := s.Revision()
	if err := s.MoveWall("a", screenPanel(3)); err != nil {
		t.Fatal(err)
	}
	if b, ok := s.EditsSince(rev2); !ok || len(b) != 2 {
		t.Fatalf("post-Invalidate window: got (%d boxes, %v), want (2, true)", len(b), ok)
	}
}

func TestEditsSinceWindowOverflow(t *testing.T) {
	s := New("edit")
	s.AddWall("a", screenPanel(1), em.Drywall)
	rev := s.Revision()
	for i := 0; i < maxEditJournal+10; i++ {
		if err := s.MoveWall("a", screenPanel(1+float64(i%3))); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.EditsSince(rev); ok {
		t.Fatal("history deeper than the journal window must be unknown")
	}
	if b, ok := s.EditsSince(s.Revision() - 1); !ok || len(b) != 2 {
		t.Fatalf("recent history must stay known: got (%d boxes, %v)", len(b), ok)
	}
}
