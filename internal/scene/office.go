package scene

import (
	"surfos/internal/em"
	"surfos/internal/geom"
)

// Office is a second reference environment: an open-plan office with a
// glass-walled meeting room — the "across sites" generality the paper
// asks of SurfOS (one control plane over many environments). Unlike the
// apartment, blockage here is dominated by glass (partially transparent at
// mmWave) and drywall partitions rather than concrete.
type Office struct {
	*Scene
	// AP hangs near the middle of the open area.
	AP geom.Vec3
	// Mounts are the pre-surveyed deployment spots.
	Mounts map[string]MountSpot
}

// Office layout constants (meters).
const (
	OfficeW = 12.0
	OfficeD = 8.0
	OfficeH = 3.0
	// Meeting room occupies the north-east corner.
	MeetX0 = 8.0
	MeetY0 = 5.0
)

// Office region names.
const (
	RegionOpenArea    = "open_area"
	RegionMeetingRoom = "meeting_room"
)

// Office mount names.
const (
	MountMeetingGlass = "meeting_glass" // on the meeting room's glass wall, inside
	MountWestPillar   = "west_pillar"   // metal pillar in the open area
)

// NewOffice builds the office scene.
func NewOffice() *Office {
	s := New("open-plan office")
	up := geom.V(0, 0, 1)

	// Outer shell: concrete.
	s.AddWall("south", geom.RectXY(geom.V(0, 0, 0), geom.V(1, 0, 0), up, OfficeW, OfficeH), em.Concrete)
	s.AddWall("north", geom.RectXY(geom.V(0, OfficeD, 0), geom.V(1, 0, 0), up, OfficeW, OfficeH), em.Concrete)
	s.AddWall("west", geom.RectXY(geom.V(0, 0, 0), geom.V(0, 1, 0), up, OfficeD, OfficeH), em.Concrete)
	s.AddWall("east", geom.RectXY(geom.V(OfficeW, 0, 0), geom.V(0, 1, 0), up, OfficeD, OfficeH), em.Concrete)
	s.AddWall("floor", geom.MustQuad(
		geom.V(0, 0, 0), geom.V(OfficeW, 0, 0), geom.V(OfficeW, OfficeD, 0), geom.V(0, OfficeD, 0)), em.Concrete)
	s.AddWall("ceiling", geom.MustQuad(
		geom.V(0, 0, OfficeH), geom.V(OfficeW, 0, OfficeH), geom.V(OfficeW, OfficeD, OfficeH), geom.V(0, OfficeD, OfficeH)), em.Concrete)

	// Meeting room: glass wall facing the open area (west side) and a
	// drywall wall on its south side with a door gap.
	s.AddWall("meet_glass_west", geom.RectXY(geom.V(MeetX0, MeetY0, 0), geom.V(0, 1, 0), up, OfficeD-MeetY0, OfficeH), em.Glass)
	s.AddWall("meet_drywall_south_a", geom.RectXY(geom.V(MeetX0, MeetY0, 0), geom.V(1, 0, 0), up, 1.5, OfficeH), em.Drywall)
	s.AddWall("meet_drywall_south_b", geom.RectXY(geom.V(MeetX0+2.5, MeetY0, 0), geom.V(1, 0, 0), up, OfficeW-MeetX0-2.5, OfficeH), em.Drywall)
	s.AddWall("meet_lintel", geom.RectXY(geom.V(MeetX0+1.5, MeetY0, 2.1), geom.V(1, 0, 0), up, 1.0, OfficeH-2.1), em.Drywall)

	// Open-area furnishings: a metal pillar and two drywall partitions.
	s.AddWall("pillar", geom.RectXY(geom.V(4.0, 3.0, 0), geom.V(0, 1, 0), up, 0.6, OfficeH), em.Metal)
	s.AddWall("partition_a", geom.RectXY(geom.V(1.5, 2.0, 0), geom.V(1, 0, 0), up, 2.2, 1.6), em.Drywall)
	s.AddWall("partition_b", geom.RectXY(geom.V(5.5, 5.5, 0), geom.V(1, 0, 0), up, 2.2, 1.6), em.Drywall)

	s.AddRegion(RegionOpenArea, geom.AABB{Min: geom.V(0.4, 0.4, 0), Max: geom.V(MeetX0-0.4, OfficeD-0.4, OfficeH)})
	s.AddRegion(RegionMeetingRoom, geom.AABB{Min: geom.V(MeetX0+0.4, MeetY0+0.4, 0), Max: geom.V(OfficeW-0.4, OfficeD-0.4, OfficeH)})

	return &Office{
		Scene: s,
		AP:    geom.V(3.0, 1.0, 2.6),
		Mounts: map[string]MountSpot{
			// Inside the meeting room on its glass wall, facing into the
			// room: relays the (attenuated) signal that penetrates the
			// glass.
			MountMeetingGlass: {
				Name:   MountMeetingGlass,
				Center: geom.V(MeetX0+0.05, 6.5, 1.8),
				U:      geom.V(0, 1, 0),
				V:      geom.V(0, 0, 1),
				Normal: geom.V(1, 0, 0),
			},
			// On the metal pillar's west face, serving the open area.
			MountWestPillar: {
				Name:   MountWestPillar,
				Center: geom.V(4.0, 3.3, 1.8),
				U:      geom.V(0, -1, 0),
				V:      geom.V(0, 0, 1),
				Normal: geom.V(-1, 0, 0),
			},
		},
	}
}
