package scene

import (
	"fmt"

	"surfos/internal/em"
	"surfos/internal/geom"
)

// RoomStrip is a synthetic multi-room building for scale studies: N equal
// rooms in a row, fully separated by doorless concrete dividers. mmWave
// signals cannot cross a divider, so each room is its own interference
// domain — the fixture the sharded orchestrator's scaling benchmarks and
// merge/split tests run against.
type RoomStrip struct {
	*Scene
	// N is the room count.
	N int
	// AP is the access point position (room 0, near the south-west corner).
	AP geom.Vec3
	// Mounts are the pre-determined surface deployment locations, two per
	// room ("room<i>_east", "room<i>_north").
	Mounts map[string]MountSpot
}

// Room strip layout constants (meters).
const (
	RoomW = 5.0 // per-room x extent
	RoomD = 5.0 // y extent
	RoomH = 3.0 // ceiling height
)

// RoomRegion returns the region name of room i ("room_0", "room_1", ...).
func RoomRegion(i int) string { return fmt.Sprintf("room_%d", i) }

// RoomDivider returns the name of the concrete divider between rooms i
// and i+1 ("divider_0", ...) — removable via Scene.RemoveWall to merge
// two interference domains.
func RoomDivider(i int) string { return fmt.Sprintf("divider_%d", i) }

// RoomMountEast and RoomMountNorth name room i's two mount spots.
func RoomMountEast(i int) string  { return fmt.Sprintf("room%d_east", i) }
func RoomMountNorth(i int) string { return fmt.Sprintf("room%d_north", i) }

// RoomCenter returns room i's center at the standard evaluation height.
func RoomCenter(i int) geom.Vec3 {
	return geom.V(float64(i)*RoomW+RoomW/2, RoomD/2, EvalHeight)
}

// NewRoomStrip builds an n-room strip (n >= 1).
func NewRoomStrip(n int) *RoomStrip {
	if n < 1 {
		n = 1
	}
	s := New(fmt.Sprintf("%d-room strip", n))
	up := geom.V(0, 0, 1)
	w := float64(n) * RoomW

	// Outer concrete shell plus floor and ceiling.
	s.AddWall("south", geom.RectXY(geom.V(0, 0, 0), geom.V(1, 0, 0), up, w, RoomH), em.Concrete)
	s.AddWall("north", geom.RectXY(geom.V(0, RoomD, 0), geom.V(1, 0, 0), up, w, RoomH), em.Concrete)
	s.AddWall("west", geom.RectXY(geom.V(0, 0, 0), geom.V(0, 1, 0), up, RoomD, RoomH), em.Concrete)
	s.AddWall("east", geom.RectXY(geom.V(w, 0, 0), geom.V(0, 1, 0), up, RoomD, RoomH), em.Concrete)
	s.AddWall("floor", geom.MustQuad(
		geom.V(0, 0, 0), geom.V(w, 0, 0), geom.V(w, RoomD, 0), geom.V(0, RoomD, 0)), em.Concrete)
	s.AddWall("ceiling", geom.MustQuad(
		geom.V(0, 0, RoomH), geom.V(w, 0, RoomH), geom.V(w, RoomD, RoomH), geom.V(0, RoomD, RoomH)), em.Concrete)

	// Full-height doorless concrete dividers between adjacent rooms.
	for i := 0; i < n-1; i++ {
		x := float64(i+1) * RoomW
		s.AddWall(RoomDivider(i), geom.RectXY(geom.V(x, 0, 0), geom.V(0, 1, 0), up, RoomD, RoomH), em.Concrete)
	}

	mounts := make(map[string]MountSpot, 2*n)
	for i := 0; i < n; i++ {
		x0 := float64(i) * RoomW
		s.AddRegion(RoomRegion(i), geom.AABB{
			Min: geom.V(x0+0.3, 0.3, 0),
			Max: geom.V(x0+RoomW-0.3, RoomD-0.3, RoomH),
		})
		// East mount: on the room's east bounding wall (a divider for all
		// but the last room), facing back into the room.
		mounts[RoomMountEast(i)] = MountSpot{
			Name:   RoomMountEast(i),
			Center: geom.V(x0+RoomW, RoomD/2+1.0, 1.8),
			U:      geom.V(0, -1, 0),
			V:      up,
			Normal: geom.V(-1, 0, 0),
		}
		// North mount: on the shared north wall, facing south into the room.
		mounts[RoomMountNorth(i)] = MountSpot{
			Name:   RoomMountNorth(i),
			Center: geom.V(x0+RoomW/2, RoomD, 1.8),
			U:      geom.V(1, 0, 0),
			V:      up,
			Normal: geom.V(0, -1, 0),
		}
	}

	return &RoomStrip{
		Scene:  s,
		N:      n,
		AP:     geom.V(0.6, 0.4, 2.0),
		Mounts: mounts,
	}
}
