// Package scene models the 3D deployment environment the paper's
// experiments run in: polygonal walls with frequency-dependent materials,
// rooms of interest, and the furnished two-room apartment used for the
// Figure 2/4/5 studies.
//
// A Scene is purely geometric and material; radios and surfaces are placed
// into it by the simulator and orchestrator layers.
package scene

import (
	"fmt"

	"surfos/internal/em"
	"surfos/internal/geom"
)

// Wall is one planar panel of the environment with a material response.
type Wall struct {
	Name     string
	Panel    *geom.Quad
	Material *em.Material
}

// Region is a named axis-aligned volume of interest, e.g. "the target room"
// the coverage service must illuminate. Service goals reference regions.
type Region struct {
	Name string
	Box  geom.AABB
}

// GridPoints returns evaluation points tiling the region horizontally at
// height z, spaced step meters apart. These are the "locations" CDFs and
// heatmaps in the paper's figures are computed over.
func (r Region) GridPoints(step, z float64) []geom.Vec3 {
	var pts []geom.Vec3
	for x := r.Box.Min.X + step/2; x < r.Box.Max.X; x += step {
		for y := r.Box.Min.Y + step/2; y < r.Box.Max.Y; y += step {
			pts = append(pts, geom.V(x, y, z))
		}
	}
	return pts
}

// Scene is a static environment: a set of material walls and named regions.
//
// Scenes carry a monotonically increasing geometry revision so downstream
// caches (the channel engine's memoized ray traces) can key on it. Every
// mutation that changes what a ray can hit — adding, moving, or removing a
// wall — bumps the revision; region bookkeeping does not.
type Scene struct {
	Name    string
	Walls   []Wall
	Regions map[string]Region

	rev uint64 // geometry revision, bumped by wall mutations
}

// New creates an empty scene.
func New(name string) *Scene {
	return &Scene{Name: name, Regions: make(map[string]Region)}
}

// Revision returns the scene's geometry revision. Two calls returning the
// same value guarantee the wall set (and hence every ray-trace result) is
// unchanged between them. Scene mutation is not goroutine-safe; callers
// that mutate concurrently with readers must synchronize externally.
func (s *Scene) Revision() uint64 { return s.rev }

// Invalidate bumps the geometry revision without structural change — the
// escape hatch for callers that mutate wall fields in place (e.g. swapping
// a Material pointer) and need caches keyed on Revision to miss.
func (s *Scene) Invalidate() { s.rev++ }

// AddWall appends a wall panel.
func (s *Scene) AddWall(name string, panel *geom.Quad, mat *em.Material) {
	s.Walls = append(s.Walls, Wall{Name: name, Panel: panel, Material: mat})
	s.rev++
}

// MoveWall replaces the panel of the named wall — a door opening, furniture
// shifting, a partition rolled aside. Returns an error for unknown walls.
// The geometry revision is bumped so engine caches re-trace.
func (s *Scene) MoveWall(name string, panel *geom.Quad) error {
	if panel == nil {
		return fmt.Errorf("scene: MoveWall %q: nil panel", name)
	}
	for i := range s.Walls {
		if s.Walls[i].Name == name {
			s.Walls[i].Panel = panel
			s.rev++
			return nil
		}
	}
	return fmt.Errorf("scene: unknown wall %q", name)
}

// RemoveWall deletes the named wall and bumps the geometry revision.
func (s *Scene) RemoveWall(name string) error {
	for i := range s.Walls {
		if s.Walls[i].Name == name {
			s.Walls = append(s.Walls[:i], s.Walls[i+1:]...)
			s.rev++
			return nil
		}
	}
	return fmt.Errorf("scene: unknown wall %q", name)
}

// AddRegion registers a named region.
func (s *Scene) AddRegion(name string, box geom.AABB) {
	s.Regions[name] = Region{Name: name, Box: box}
}

// Region looks up a region by name.
func (s *Scene) Region(name string) (Region, error) {
	r, ok := s.Regions[name]
	if !ok {
		return Region{}, fmt.Errorf("scene: unknown region %q", name)
	}
	return r, nil
}

// Bounds returns the AABB enclosing all walls.
func (s *Scene) Bounds() geom.AABB {
	if len(s.Walls) == 0 {
		return geom.AABB{}
	}
	b := s.Walls[0].Panel.Bounds()
	for _, w := range s.Walls[1:] {
		wb := w.Panel.Bounds()
		b.Min = geom.V(min(b.Min.X, wb.Min.X), min(b.Min.Y, wb.Min.Y), min(b.Min.Z, wb.Min.Z))
		b.Max = geom.V(max(b.Max.X, wb.Max.X), max(b.Max.Y, wb.Max.Y), max(b.Max.Z, wb.Max.Z))
	}
	return b
}

// Occlusions returns, for every wall the open segment from a to b crosses
// (excluding endpoints sitting on a wall), the wall index. The simulator
// multiplies the corresponding transmission coefficients into the path gain.
func (s *Scene) Occlusions(a, b geom.Vec3) []int {
	d := b.Sub(a)
	dist := d.Len()
	if dist < geom.Eps {
		return nil
	}
	r := geom.Ray{Origin: a, Dir: d.Scale(1 / dist)}
	var hits []int
	for i := range s.Walls {
		t, _, ok := s.Walls[i].Panel.IntersectRay(r, dist-1e-6)
		if ok && t > 1e-6 {
			hits = append(hits, i)
		}
	}
	return hits
}

// SegmentGain returns the cumulative amplitude factor from penetrating all
// walls between a and b at freqHz (1.0 when the segment is clear).
func (s *Scene) SegmentGain(a, b geom.Vec3, freqHz float64) float64 {
	g := 1.0
	for _, wi := range s.Occlusions(a, b) {
		g *= s.Walls[wi].Material.Transmission(freqHz)
		if g == 0 {
			return 0
		}
	}
	return g
}
