// Package scene models the 3D deployment environment the paper's
// experiments run in: polygonal walls with frequency-dependent materials,
// rooms of interest, and the furnished two-room apartment used for the
// Figure 2/4/5 studies.
//
// A Scene is purely geometric and material; radios and surfaces are placed
// into it by the simulator and orchestrator layers.
package scene

import (
	"fmt"

	"surfos/internal/em"
	"surfos/internal/geom"
)

// Wall is one planar panel of the environment with a material response.
type Wall struct {
	Name     string
	Panel    *geom.Quad
	Material *em.Material
}

// Region is a named axis-aligned volume of interest, e.g. "the target room"
// the coverage service must illuminate. Service goals reference regions.
type Region struct {
	Name string
	Box  geom.AABB
}

// GridPoints returns evaluation points tiling the region horizontally at
// height z, spaced step meters apart. These are the "locations" CDFs and
// heatmaps in the paper's figures are computed over.
func (r Region) GridPoints(step, z float64) []geom.Vec3 {
	var pts []geom.Vec3
	for x := r.Box.Min.X + step/2; x < r.Box.Max.X; x += step {
		for y := r.Box.Min.Y + step/2; y < r.Box.Max.Y; y += step {
			pts = append(pts, geom.V(x, y, z))
		}
	}
	return pts
}

// Scene is a static environment: a set of material walls and named regions.
//
// Scenes carry a monotonically increasing geometry revision so downstream
// caches (the channel engine's memoized ray traces) can key on it. Every
// mutation that changes what a ray can hit — adding, moving, or removing a
// wall — bumps the revision; region bookkeeping does not.
type Scene struct {
	Name    string
	Walls   []Wall
	Regions map[string]Region

	rev uint64 // geometry revision, bumped by wall mutations

	// Edit-bounds journal: one record per revision bump, holding the
	// AABBs of the geometry that changed in that bump (or a global flag
	// for Invalidate, whose blast radius is unknowable). Downstream
	// caches use EditsSince to decide whether a cached trace could have
	// been affected by the edits between two revisions — the basis of
	// the engine's per-region invalidation.
	journal []editRecord

	// Batched-edit state: while editDepth > 0, mutations accumulate
	// their dirty bounds into pending instead of bumping rev per call.
	editDepth     int
	pending       []geom.AABB
	pendingGlobal bool
}

// editRecord is one revision bump's dirty geometry.
type editRecord struct {
	rev    uint64
	bounds []geom.AABB
	global bool // Invalidate: everything may have changed
}

// maxEditJournal bounds the edit-bounds journal; histories deeper than
// this fall off the window and EditsSince reports "unknown" (callers
// fall back to full invalidation, exactly the pre-journal behavior).
const maxEditJournal = 128

// New creates an empty scene.
func New(name string) *Scene {
	return &Scene{Name: name, Regions: make(map[string]Region)}
}

// Revision returns the scene's geometry revision. Two calls returning the
// same value guarantee the wall set (and hence every ray-trace result) is
// unchanged between them. Scene mutation is not goroutine-safe; callers
// that mutate concurrently with readers must synchronize externally.
func (s *Scene) Revision() uint64 { return s.rev }

// bump records one geometry mutation: inside an Edit batch the bounds
// accumulate; outside, the revision advances immediately and the journal
// gains one record. No bounds means the blast radius is unknown (global).
func (s *Scene) bump(global bool, bounds ...geom.AABB) {
	if s.editDepth > 0 {
		if global {
			s.pendingGlobal = true
		}
		s.pending = append(s.pending, bounds...)
		return
	}
	s.rev++
	s.journal = append(s.journal, editRecord{rev: s.rev, bounds: bounds, global: global})
	if len(s.journal) > maxEditJournal {
		s.journal = s.journal[len(s.journal)-maxEditJournal:]
	}
}

// Edit runs fn with revision bumping suspended: every wall mutation made
// inside fn — however many — commits as a single revision bump when the
// outermost Edit returns, so a scripted step that toggles several walls
// invalidates downstream caches once instead of per call. Nested Edits
// fold into the outermost batch. The batch commits even when fn returns
// an error: the mutations made before the failure have still happened,
// and caches must observe them.
func (s *Scene) Edit(fn func(*Scene) error) error {
	s.editDepth++
	err := fn(s)
	s.editDepth--
	if s.editDepth == 0 && (len(s.pending) > 0 || s.pendingGlobal) {
		bounds, global := s.pending, s.pendingGlobal
		s.pending, s.pendingGlobal = nil, false
		s.bump(global, bounds...)
	}
	return err
}

// EditsSince returns the union of dirty bounds of every edit after
// revision rev, up to the current revision. ok is false when the answer
// is unknowable — rev predates the journal window, an Invalidate (global
// edit) happened, or rev is from a different history — in which case
// callers must assume everything changed.
func (s *Scene) EditsSince(rev uint64) (bounds []geom.AABB, ok bool) {
	if rev == s.rev {
		return nil, true
	}
	if rev > s.rev {
		return nil, false
	}
	// The journal holds one record per bump with consecutive revisions;
	// coverage of (rev, s.rev] requires its oldest record to be ≤ rev+1.
	if len(s.journal) == 0 || s.journal[0].rev > rev+1 {
		return nil, false
	}
	for _, rec := range s.journal {
		if rec.rev <= rev {
			continue
		}
		if rec.global {
			return nil, false
		}
		bounds = append(bounds, rec.bounds...)
	}
	return bounds, true
}

// Invalidate bumps the geometry revision without structural change — the
// escape hatch for callers that mutate wall fields in place (e.g. swapping
// a Material pointer) and need caches keyed on Revision to miss. Because
// the engine cannot see what changed, the edit is journaled as global and
// every cached trace misses.
func (s *Scene) Invalidate() { s.bump(true) }

// AddWall appends a wall panel.
func (s *Scene) AddWall(name string, panel *geom.Quad, mat *em.Material) {
	s.Walls = append(s.Walls, Wall{Name: name, Panel: panel, Material: mat})
	s.bump(false, panel.Bounds())
}

// MoveWall replaces the panel of the named wall — a door opening, furniture
// shifting, a partition rolled aside. Returns an error for unknown walls.
// The geometry revision is bumped so engine caches re-trace.
func (s *Scene) MoveWall(name string, panel *geom.Quad) error {
	if panel == nil {
		return fmt.Errorf("scene: MoveWall %q: nil panel", name)
	}
	for i := range s.Walls {
		if s.Walls[i].Name == name {
			old := s.Walls[i].Panel.Bounds()
			s.Walls[i].Panel = panel
			s.bump(false, old, panel.Bounds())
			return nil
		}
	}
	return fmt.Errorf("scene: unknown wall %q", name)
}

// RemoveWall deletes the named wall and bumps the geometry revision.
func (s *Scene) RemoveWall(name string) error {
	for i := range s.Walls {
		if s.Walls[i].Name == name {
			old := s.Walls[i].Panel.Bounds()
			s.Walls = append(s.Walls[:i], s.Walls[i+1:]...)
			s.bump(false, old)
			return nil
		}
	}
	return fmt.Errorf("scene: unknown wall %q", name)
}

// AddRegion registers a named region.
func (s *Scene) AddRegion(name string, box geom.AABB) {
	s.Regions[name] = Region{Name: name, Box: box}
}

// Region looks up a region by name.
func (s *Scene) Region(name string) (Region, error) {
	r, ok := s.Regions[name]
	if !ok {
		return Region{}, fmt.Errorf("scene: unknown region %q", name)
	}
	return r, nil
}

// Bounds returns the AABB enclosing all walls.
func (s *Scene) Bounds() geom.AABB {
	if len(s.Walls) == 0 {
		return geom.AABB{}
	}
	b := s.Walls[0].Panel.Bounds()
	for _, w := range s.Walls[1:] {
		wb := w.Panel.Bounds()
		b.Min = geom.V(min(b.Min.X, wb.Min.X), min(b.Min.Y, wb.Min.Y), min(b.Min.Z, wb.Min.Z))
		b.Max = geom.V(max(b.Max.X, wb.Max.X), max(b.Max.Y, wb.Max.Y), max(b.Max.Z, wb.Max.Z))
	}
	return b
}

// Occlusions returns, for every wall the open segment from a to b crosses
// (excluding endpoints sitting on a wall), the wall index. The simulator
// multiplies the corresponding transmission coefficients into the path gain.
func (s *Scene) Occlusions(a, b geom.Vec3) []int {
	d := b.Sub(a)
	dist := d.Len()
	if dist < geom.Eps {
		return nil
	}
	r := geom.Ray{Origin: a, Dir: d.Scale(1 / dist)}
	var hits []int
	for i := range s.Walls {
		t, _, ok := s.Walls[i].Panel.IntersectRay(r, dist-1e-6)
		if ok && t > 1e-6 {
			hits = append(hits, i)
		}
	}
	return hits
}

// SegmentGain returns the cumulative amplitude factor from penetrating all
// walls between a and b at freqHz (1.0 when the segment is clear).
func (s *Scene) SegmentGain(a, b geom.Vec3, freqHz float64) float64 {
	g := 1.0
	for _, wi := range s.Occlusions(a, b) {
		g *= s.Walls[wi].Material.Transmission(freqHz)
		if g == 0 {
			return 0
		}
	}
	return g
}
