package scene

import (
	"math"
	"testing"

	"surfos/internal/em"
	"surfos/internal/geom"
)

func TestRegionGridPoints(t *testing.T) {
	r := Region{Name: "r", Box: geom.AABB{Min: geom.V(0, 0, 0), Max: geom.V(2, 1, 3)}}
	pts := r.GridPoints(0.5, 1.2)
	if len(pts) != 4*2 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	for _, p := range pts {
		if p.Z != 1.2 {
			t.Errorf("point %v not at eval height", p)
		}
		if !r.Box.Contains(geom.V(p.X, p.Y, 0)) {
			t.Errorf("point %v outside region footprint", p)
		}
	}
}

func TestSceneRegionLookup(t *testing.T) {
	s := New("t")
	s.AddRegion("a", geom.AABB{Max: geom.V(1, 1, 1)})
	if _, err := s.Region("a"); err != nil {
		t.Errorf("lookup failed: %v", err)
	}
	if _, err := s.Region("missing"); err == nil {
		t.Error("missing region should error")
	}
}

func TestOcclusions(t *testing.T) {
	s := New("t")
	// A single wall at y=1 spanning x∈[0,2], z∈[0,2].
	s.AddWall("w", geom.RectXY(geom.V(0, 1, 0), geom.V(1, 0, 0), geom.V(0, 0, 1), 2, 2), em.Drywall)

	// Segment crossing the wall.
	hits := s.Occlusions(geom.V(1, 0, 1), geom.V(1, 2, 1))
	if len(hits) != 1 {
		t.Fatalf("crossing segment: %d hits, want 1", len(hits))
	}
	// Segment passing beside the wall.
	if hits := s.Occlusions(geom.V(3, 0, 1), geom.V(3, 2, 1)); len(hits) != 0 {
		t.Errorf("clear segment: %d hits, want 0", len(hits))
	}
	// Segment ending exactly on the wall should not count the endpoint.
	if hits := s.Occlusions(geom.V(1, 0, 1), geom.V(1, 1, 1)); len(hits) != 0 {
		t.Errorf("segment to wall point: %d hits, want 0", len(hits))
	}
}

func TestSegmentGain(t *testing.T) {
	s := New("t")
	s.AddWall("w", geom.RectXY(geom.V(0, 1, 0), geom.V(1, 0, 0), geom.V(0, 0, 1), 2, 2), em.Drywall)
	g := s.SegmentGain(geom.V(1, 0, 1), geom.V(1, 2, 1), em.Band2G4)
	want := em.Drywall.Transmission(em.Band2G4)
	if math.Abs(g-want) > 1e-12 {
		t.Errorf("gain = %v, want %v", g, want)
	}
	if g := s.SegmentGain(geom.V(3, 0, 1), geom.V(3, 2, 1), em.Band2G4); g != 1 {
		t.Errorf("clear gain = %v, want 1", g)
	}
	// Metal wall blocks completely.
	s2 := New("t2")
	s2.AddWall("m", geom.RectXY(geom.V(0, 1, 0), geom.V(1, 0, 0), geom.V(0, 0, 1), 2, 2), em.Metal)
	if g := s2.SegmentGain(geom.V(1, 0, 1), geom.V(1, 2, 1), em.Band5G); g != 0 {
		t.Errorf("metal gain = %v, want 0", g)
	}
}

func TestApartmentLayout(t *testing.T) {
	apt := NewApartment()

	if len(apt.Walls) < 10 {
		t.Errorf("apartment has %d walls, want >= 10", len(apt.Walls))
	}
	if _, err := apt.Scene.Region(RegionTargetRoom); err != nil {
		t.Fatal(err)
	}
	if _, err := apt.Scene.Region(RegionLivingRoom); err != nil {
		t.Fatal(err)
	}

	// The AP must be inside the living room.
	lr := apt.Regions[RegionLivingRoom]
	if !lr.Box.Contains(apt.AP) {
		t.Errorf("AP %v not in living room %v", apt.AP, lr.Box)
	}
}

func TestApartmentDoorwayOpen(t *testing.T) {
	apt := NewApartment()
	// A segment through the middle of the doorway must be clear at 60 GHz.
	doorMid := geom.V((DoorX0+DoorX1)/2, DividerY, 1.0)
	from := geom.V(4.5, 1.0, 1.0)
	to := geom.V(4.5, 6.0, 1.0)
	// from→doorMid→to colinear-ish; just check a straight path through the door.
	through := apt.SegmentGain(geom.V(doorMid.X, 1.0, 1.0), geom.V(doorMid.X, 6.0, 1.0), em.Band24G)
	if through == 0 {
		t.Error("path through doorway should not be fully blocked")
	}
	_ = from
	_ = to
	// A path through the solid divider is essentially blocked at 24 GHz.
	blocked := apt.SegmentGain(geom.V(1.0, 1.0, 1.0), geom.V(1.0, 6.0, 1.0), em.Band24G)
	if blocked > 0.05 {
		t.Errorf("path through concrete divider gain = %v, want ≈0", blocked)
	}
}

func TestApartmentAPSeesEastMountThroughDoor(t *testing.T) {
	apt := NewApartment()
	m := apt.Mounts[MountEastWall]
	g := apt.SegmentGain(apt.AP, m.Center.Add(m.Normal.Scale(0.02)), em.Band24G)
	if g < 0.9 {
		t.Errorf("AP→east mount gain = %v, want clear (≈1); doorway misaligned", g)
	}
}

func TestApartmentMountsSeeEachOther(t *testing.T) {
	apt := NewApartment()
	a := apt.Mounts[MountEastWall]
	b := apt.Mounts[MountNorthWall]
	g := apt.SegmentGain(a.Center.Add(a.Normal.Scale(0.02)), b.Center.Add(b.Normal.Scale(0.02)), em.Band24G)
	if g < 0.9 {
		t.Errorf("mount-to-mount gain = %v, want clear", g)
	}
}

func TestMountPanel(t *testing.T) {
	apt := NewApartment()
	m := apt.Mounts[MountEastWall]
	p := m.Panel(0.6, 0.4)
	if math.Abs(p.Area()-0.24) > 1e-9 {
		t.Errorf("panel area = %v, want 0.24", p.Area())
	}
	if !p.Center().ApproxEqual(m.Center.Add(m.Normal.Scale(0.01)), 1e-9) {
		t.Errorf("panel center = %v, want near %v", p.Center(), m.Center)
	}
	// Panel normal should match the mount normal.
	if !p.Normal().ApproxEqual(m.Normal, 1e-9) {
		t.Errorf("panel normal = %v, want %v", p.Normal(), m.Normal)
	}
}

func TestTargetGrid(t *testing.T) {
	apt := NewApartment()
	pts := apt.TargetGrid(0.5)
	if len(pts) == 0 {
		t.Fatal("empty target grid")
	}
	tr := apt.Regions[RegionTargetRoom]
	for _, p := range pts {
		if p.Z != EvalHeight {
			t.Fatalf("grid point %v not at eval height", p)
		}
		if p.Y < tr.Box.Min.Y || p.Y > tr.Box.Max.Y {
			t.Fatalf("grid point %v outside target room", p)
		}
	}
}

func TestSceneBounds(t *testing.T) {
	apt := NewApartment()
	b := apt.Bounds()
	if b.Min.X > 0.01 || b.Max.X < AptW-0.01 || b.Max.Z < AptH-0.01 {
		t.Errorf("bounds %v..%v do not cover apartment", b.Min, b.Max)
	}
	if empty := New("e").Bounds(); !empty.Min.IsZero() || !empty.Max.IsZero() {
		t.Error("empty scene bounds should be zero")
	}
}

func TestOfficeLayout(t *testing.T) {
	off := NewOffice()
	if len(off.Walls) < 10 {
		t.Errorf("office has %d walls", len(off.Walls))
	}
	for _, name := range []string{RegionOpenArea, RegionMeetingRoom} {
		if _, err := off.Scene.Region(name); err != nil {
			t.Errorf("region %s: %v", name, err)
		}
	}
	// The AP sits in the open area.
	if !off.Regions[RegionOpenArea].Box.Contains(off.AP) {
		t.Errorf("AP %v outside the open area", off.AP)
	}
	// Mount normals match panel winding.
	for name, m := range off.Mounts {
		p := m.Panel(0.3, 0.3)
		if !p.Normal().ApproxEqual(m.Normal, 1e-9) {
			t.Errorf("mount %s: panel normal %v != %v", name, p.Normal(), m.Normal)
		}
	}
}

func TestOfficeGlassAttenuatesButPasses(t *testing.T) {
	off := NewOffice()
	// AP → meeting room crosses the glass: attenuated but not blocked at
	// 24 GHz (unlike the apartment's concrete divider).
	meet := geom.V(10, 6.5, 1.2)
	g := off.SegmentGain(off.AP, meet, em.Band24G)
	if g <= 0.05 || g >= 0.9 {
		t.Errorf("glass path gain = %v, want partial (0.05..0.9)", g)
	}
	// The glass-wall mount sees the meeting room unobstructed.
	m := off.Mounts[MountMeetingGlass]
	if gg := off.SegmentGain(m.Center.Add(m.Normal.Scale(0.02)), meet, em.Band24G); gg < 0.9 {
		t.Errorf("mount→room gain = %v, want clear", gg)
	}
}

func TestOfficePillarBlocksMetal(t *testing.T) {
	off := NewOffice()
	// A path straight through the pillar is fully blocked.
	a, b := geom.V(3.0, 3.3, 1.5), geom.V(5.0, 3.3, 1.5)
	if g := off.SegmentGain(a, b, em.Band5G); g != 0 {
		t.Errorf("through-pillar gain = %v, want 0", g)
	}
}
