// Package sensing implements surface-aided localization in the spirit of
// md-Track (the estimator the paper uses in §4): joint space–frequency
// angle-of-arrival estimation through a metasurface aperture, and its
// conversion to localization error under the paper's accurate-ToF
// assumption.
//
// The physical setup mirrors the paper's Figure 2: a client in the target
// room transmits; its signal reaches the AP via the metasurface; the AP —
// a mmWave unit with an antenna array — observes one complex sample per
// (antenna, OFDM subcarrier) pair. Knowing the surface configuration, the
// estimator correlates this space–frequency measurement against
// spherical-wavefront signatures over a grid of candidate angles (the
// accurate ToF pins the range, so the dictionary is near-field-correct).
// Both dimensions are essential: the wideband axis resolves the aperture's
// differential delays and the array axis resolves the aperture spatially;
// together they give the measurement enough effective dimensions to
// discriminate angle through a single static surface configuration.
//
// The spectrum is noise-regularized: when the surface configuration
// starves a location of signal power, the spectrum flattens toward uniform
// and localization collapses — the coverage/sensing conflict of the
// paper's Figure 2 that the joint optimizer (Figure 5) resolves.
package sensing

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/rfsim"
	"surfos/internal/surface"
)

// Estimator performs space–frequency AoA estimation through one surface.
type Estimator struct {
	Surf    *surface.Surface
	SurfIdx int // index of the sensing surface in the simulator
	// Ants are the AP antenna positions (use ULA for a standard array).
	Ants []geom.Vec3
	// Bins are the candidate azimuth angles (radians, measured in the
	// surface's horizontal plane from the boresight normal; positive toward
	// the panel's U axis).
	Bins []float64
	// Subcarriers are the absolute sounding frequencies.
	Subcarriers []float64
	// NoisePower is the per-observation complex noise power ν in
	// channel-gain units (|h|² scale). It regularizes the spectrum so that
	// signal-starved locations cannot be localized. Zero disables it.
	NoisePower float64

	// txs[f][a]: transmitter context for subcarrier f, antenna a.
	txs [][]*rfsim.TxContext
	// apLeg[slot][k]: element→antenna leg for observation slot = f*len(Ants)+a.
	apLeg [][]complex128
	// aperture frame
	center geom.Vec3
	normal geom.Vec3
	uAxis  geom.Vec3
}

// ULA returns an n-antenna uniform linear array centered at c along unit
// axis with the given element spacing.
func ULA(c geom.Vec3, axis geom.Vec3, n int, spacing float64) []geom.Vec3 {
	axis = axis.Normalize()
	out := make([]geom.Vec3, n)
	for i := range out {
		off := (float64(i) - float64(n-1)/2) * spacing
		out[i] = c.Add(axis.Scale(off))
	}
	return out
}

// DefaultBins returns an angle grid of n bins spanning ±span radians.
func DefaultBins(n int, span float64) []float64 {
	bins := make([]float64, n)
	for i := range bins {
		bins[i] = -span + 2*span*float64(i)/float64(n-1)
	}
	return bins
}

// DefaultSubcarriers returns n sounding tones spread over bw Hz centered on
// carrier.
func DefaultSubcarriers(carrier, bw float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = carrier - bw/2 + bw*float64(i)/float64(n-1)
	}
	return out
}

// NewEstimator builds the estimator, tracing the AP-side legs once per
// (subcarrier, antenna) pair.
func NewEstimator(sim *rfsim.Simulator, surfIdx int, ants []geom.Vec3, bins, subcarriers []float64) (*Estimator, error) {
	if sim == nil {
		return nil, fmt.Errorf("sensing: nil simulator")
	}
	if surfIdx < 0 || surfIdx >= len(sim.Surfaces) {
		return nil, fmt.Errorf("sensing: surface index %d out of range", surfIdx)
	}
	if len(ants) == 0 {
		return nil, fmt.Errorf("sensing: need at least one AP antenna")
	}
	if len(bins) < 2 {
		return nil, fmt.Errorf("sensing: need at least 2 angle bins")
	}
	if len(subcarriers) < 2 {
		return nil, fmt.Errorf("sensing: need at least 2 subcarriers for wideband estimation")
	}
	s := sim.Surfaces[surfIdx]
	e := &Estimator{
		Surf:        s,
		SurfIdx:     surfIdx,
		Ants:        ants,
		Bins:        bins,
		Subcarriers: subcarriers,
		center:      s.Panel.Center(),
		normal:      s.Normal(),
	}
	c := s.Panel.Corners()
	e.uAxis = c[1].Sub(c[0]).Normalize()

	e.txs = make([][]*rfsim.TxContext, len(subcarriers))
	e.apLeg = make([][]complex128, len(subcarriers)*len(ants))
	for f, freq := range subcarriers {
		e.txs[f] = make([]*rfsim.TxContext, len(ants))
		for a, ant := range ants {
			tc := sim.NewTxAt(ant, freq)
			e.txs[f][a] = tc
			e.apLeg[f*len(ants)+a] = tc.IncidentCoeffs(surfIdx)
		}
	}
	return e, nil
}

// NumSlots returns the number of observation slots (antennas × subcarriers).
func (e *Estimator) NumSlots() int { return len(e.Subcarriers) * len(e.Ants) }

// slotFreq maps an observation slot to its subcarrier index.
func (e *Estimator) slotFreq(slot int) int { return slot / len(e.Ants) }

// binDirection converts a bin azimuth to a unit direction from the surface
// into the room, rotated in the horizontal plane spanned by (normal, uAxis).
func (e *Estimator) binDirection(theta float64) geom.Vec3 {
	uh := geom.V(e.uAxis.X, e.uAxis.Y, 0).Normalize()
	nh := geom.V(e.normal.X, e.normal.Y, 0).Normalize()
	return nh.Scale(math.Cos(theta)).Add(uh.Scale(math.Sin(theta)))
}

// TrueAoA returns the azimuth of a client position in the estimator's bin
// frame, and its distance from the aperture center.
func (e *Estimator) TrueAoA(client geom.Vec3) (theta, dist float64) {
	v := client.Sub(e.center)
	dist = v.Len()
	uh := geom.V(e.uAxis.X, e.uAxis.Y, 0).Normalize()
	nh := geom.V(e.normal.X, e.normal.Y, 0).Normalize()
	vh := geom.V(v.X, v.Y, 0)
	theta = math.Atan2(vh.Dot(uh), vh.Dot(nh))
	return theta, dist
}

// TrueBin returns the index of the bin closest to the client's true AoA.
func (e *Estimator) TrueBin(client geom.Vec3) int {
	th, _ := e.TrueAoA(client)
	best, bestD := 0, math.Inf(1)
	for i, b := range e.Bins {
		if d := math.Abs(b - th); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// SteerGeoAt builds the geometric part of the signature dictionary for
// sources at range R: SteerGeo[f][b][k] = e^{-j·k_f·|q_b − p_k|}, where q_b
// sits at range R along bin b's direction (at the aperture center's
// height). The full slot signature is SteerGeo[f(slot)][b][k]·apLeg[slot][k];
// factoring out the antenna axis keeps the dictionary F·Θ·N instead of
// F·M·Θ·N. The full path phase is kept — a per-subcarrier common phase
// k_f·R does not cancel across tones and must match the measurement's delay
// structure (this is what makes the estimator ToF-consistent, as in
// md-Track).
func (e *Estimator) SteerGeoAt(r float64) [][][]complex128 {
	pos := e.Surf.ElementPositions()
	out := make([][][]complex128, len(e.Subcarriers))
	for f, freq := range e.Subcarriers {
		k := em.Wavenumber(freq)
		perBin := make([][]complex128, len(e.Bins))
		for b, th := range e.Bins {
			q := e.center.Add(e.binDirection(th).Scale(r))
			sig := make([]complex128, len(pos))
			for ei, p := range pos {
				sig[ei] = cmplx.Rect(1, -k*q.Dist(p))
			}
			perBin[b] = sig
		}
		out[f] = perBin
	}
	return out
}

// Measurement is the affine space–frequency measurement model for one
// client location: y_slot = Direct[slot] + Σ_sk Coef[slot][s][k]·e^{jφ_sk},
// plus the location's signature dictionary (built at the ToF-known range).
type Measurement struct {
	Client geom.Vec3
	Direct []complex128     // per observation slot
	Coef   [][][]complex128 // [slot][surface][element]
	// SteerGeo[f][b][k] is the geometric dictionary (see SteerGeoAt).
	SteerGeo [][][]complex128
	TrueAoA  float64
	Dist     float64
	TrueBin  int
}

// Measure builds the measurement model for a client position.
func (e *Estimator) Measure(client geom.Vec3) *Measurement {
	n := e.NumSlots()
	m := &Measurement{
		Client: client,
		Direct: make([]complex128, n),
		Coef:   make([][][]complex128, n),
	}
	m.TrueAoA, m.Dist = e.TrueAoA(client)
	m.TrueBin = e.TrueBin(client)
	for f := range e.Subcarriers {
		for a := range e.Ants {
			slot := f*len(e.Ants) + a
			ch := e.txs[f][a].Channel(client)
			m.Direct[slot] = ch.Direct
			m.Coef[slot] = ch.Single
		}
	}
	m.SteerGeo = e.SteerGeoAt(m.Dist)
	return m
}

// Observe evaluates the measurement vector under phasors x, adding complex
// Gaussian noise of the given amplitude per slot when rng is non-nil.
func (m *Measurement) Observe(x [][]complex128, noiseAmp float64, rng *rand.Rand) []complex128 {
	y := make([]complex128, len(m.Direct))
	for i := range y {
		h := m.Direct[i]
		for s, coeffs := range m.Coef[i] {
			for k, c := range coeffs {
				if c != 0 {
					h += c * x[s][k]
				}
			}
		}
		if rng != nil && noiseAmp > 0 {
			h += complex(rng.NormFloat64()*noiseAmp/math.Sqrt2, rng.NormFloat64()*noiseAmp/math.Sqrt2)
		}
		y[i] = h
	}
	return y
}

// signatureRow computes m_slot(b) = Σ_k SteerGeo[f][b][k]·apLeg[slot][k]·x_k
// for every slot at one bin.
func (e *Estimator) signatureRow(m *Measurement, b int, xs []complex128, out []complex128) {
	nAnts := len(e.Ants)
	for slot := range out {
		geo := m.SteerGeo[slot/nAnts][b]
		leg := e.apLeg[slot]
		var acc complex128
		for k, g := range geo {
			if l := leg[k]; l != 0 {
				acc += g * l * xs[k]
			}
		}
		out[slot] = acc
	}
}

// Spectrum computes the noise-regularized matched-filter angle spectrum for
// observation y under surface phasors x, using the measurement's signature
// dictionary:
//
//	P_b = (|ρ_b|² + ν·M_b) / ((Y + S·ν)·M_b)
//
// with ρ_b = Σ_slot y·conj(m_b), Y = Σ|y|², M_b = Σ|m_b|², ν the noise
// power and S the slot count. P_b ∈ (0, 1]; a signal-starved observation
// flattens toward 1/S.
func (e *Estimator) Spectrum(m *Measurement, y []complex128, x [][]complex128) []float64 {
	xs := x[e.SurfIdx]
	var yPow float64
	for _, v := range y {
		yPow += real(v)*real(v) + imag(v)*imag(v)
	}
	nu := e.NoisePower
	nSlots := len(y)
	mi := make([]complex128, nSlots)
	out := make([]float64, len(e.Bins))
	for b := range e.Bins {
		e.signatureRow(m, b, xs, mi)
		var rho complex128
		var mPow float64
		for i, v := range mi {
			rho += y[i] * cmplx.Conj(v)
			mPow += real(v)*real(v) + imag(v)*imag(v)
		}
		num := real(rho)*real(rho) + imag(rho)*imag(rho) + nu*mPow
		den := (yPow+float64(nSlots)*nu)*mPow + 1e-300
		out[b] = num / den
	}
	return out
}

// Estimate returns the estimated AoA (peak bin) and the localization error
// in meters under the accurate-ToF assumption: the position error is the
// arc subtended by the angular error at the client's distance.
//
// The static environment response (m.Direct) is subtracted before
// correlation: it is configuration-independent, so a real deployment
// cancels it by differencing soundings taken under two surface
// configurations — standard practice in RIS sensing. Noise (drawn fresh per
// sounding) survives the differencing.
func (e *Estimator) Estimate(m *Measurement, phases [][]float64, noiseAmp float64, rng *rand.Rand) (aoa, locErr float64) {
	x := em.Phasors(phases)
	y := m.Observe(x, noiseAmp, rng)
	for i := range y {
		y[i] -= m.Direct[i]
	}
	spec := e.Spectrum(m, y, x)
	best := 0
	for b := range spec {
		if spec[b] > spec[best] {
			best = b
		}
	}
	aoa = e.Bins[best]
	locErr = LocalizationError(aoa, m.TrueAoA, m.Dist)
	return aoa, locErr
}

// LocalizationError converts an angular error to meters at the given range.
func LocalizationError(estAoA, trueAoA, dist float64) float64 {
	return dist * math.Abs(estAoA-trueAoA)
}

// NoiseAmplitude returns the complex-noise amplitude in channel-gain units
// implied by a link budget: the noise floor referred back through the
// transmit power and antenna gains.
func NoiseAmplitude(lb rfsim.LinkBudget) float64 {
	return math.Sqrt(em.FromDB(lb.NoiseFloorDBm() - lb.TxPowerDBm - lb.AntennaGainDB))
}
