package sensing

import (
	"math/cmplx"

	"surfos/internal/em"
	"surfos/internal/optimize"
)

// locState caches the configuration-dependent pieces of one location's
// spectrum at the committed phases: the surface-borne measurement y, the
// signature matrix mm[b][slot], and the per-bin signature powers. Moving one
// element perturbs y by Coef[slot][s][k]·dx (every slot) and — only when the
// moved surface is the sensing surface — mm by Steer·apLeg·dx, so a trial
// re-prices the spectrum in O(bins·slots) independent of the element count.
type locState struct {
	m    *Measurement
	y    []complex128   // committed surface-borne measurement per slot
	mm   [][]complex128 // committed signatures, [bin][slot]
	mPow []float64      // committed Σ_slot |mm[b]|² per bin

	tMPow []float64 // trial signature powers (valid for the pending move)
}

// deltaEvaluator implements optimize.DeltaEvaluator for the localization
// loss. It is not safe for concurrent use.
type deltaEvaluator struct {
	o    *LocalizationObjective
	x    [][]complex128 // committed element phasors
	locs []*locState

	loss  float64
	trial float64

	pending bool
	ps, pk  int
	px, dx  complex128

	// Scratch reused across trials.
	ty   []complex128 // trial y for the location being priced
	spec []float64
	soft []float64
}

// NewDeltaEvaluator implements optimize.DeltaObjective. The session carries
// O(locations·bins·slots) cached state; trials cost O(locations·bins·slots)
// instead of the full evaluation's O(locations·bins·slots·elements).
func (o *LocalizationObjective) NewDeltaEvaluator(phases [][]float64) optimize.DeltaEvaluator {
	est := o.Est
	nSlots := est.NumSlots()
	nb := len(est.Bins)
	x := em.Phasors(phases)
	xs := x[est.SurfIdx]
	nu := est.NoisePower

	e := &deltaEvaluator{
		o: o, x: x,
		locs: make([]*locState, len(o.Locations)),
		ty:   make([]complex128, nSlots),
		spec: make([]float64, nb),
		soft: make([]float64, nb),
	}
	inv := 1 / float64(len(o.Locations))
	for li, m := range o.Locations {
		ls := &locState{
			m:     m,
			mm:    make([][]complex128, nb),
			mPow:  make([]float64, nb),
			tMPow: make([]float64, nb),
		}
		ls.y = m.Observe(x, 0, nil)
		for i := range ls.y {
			ls.y[i] -= m.Direct[i]
		}
		var yPow float64
		for _, v := range ls.y {
			yPow += real(v)*real(v) + imag(v)*imag(v)
		}
		for b := 0; b < nb; b++ {
			mi := make([]complex128, nSlots)
			est.signatureRow(m, b, xs, mi)
			var rho complex128
			var mPow float64
			for i := 0; i < nSlots; i++ {
				rho += ls.y[i] * cmplx.Conj(mi[i])
				mPow += real(mi[i])*real(mi[i]) + imag(mi[i])*imag(mi[i])
			}
			ls.mm[b] = mi
			ls.mPow[b] = mPow
			num := real(rho)*real(rho) + imag(rho)*imag(rho) + nu*mPow
			den := (yPow+float64(nSlots)*nu)*mPow + 1e-300
			e.spec[b] = num / den
		}
		e.locs[li] = ls
		e.loss += softmaxCE(e.spec, e.soft, o.Beta, m.TrueBin) * inv
	}
	return e
}

// Loss implements optimize.DeltaEvaluator.
func (e *deltaEvaluator) Loss() float64 { return e.loss }

// TryDelta implements optimize.DeltaEvaluator.
func (e *deltaEvaluator) TryDelta(s, k int, newPhase float64) float64 {
	px := em.PhaseShift(newPhase)
	dx := px - e.x[s][k]
	e.pending, e.ps, e.pk, e.px, e.dx = true, s, k, px, dx

	inv := 1 / float64(len(e.locs))
	var loss float64
	for _, ls := range e.locs {
		loss += e.lossAt(ls, s, k, dx) * inv
	}
	e.trial = loss
	return loss
}

// lossAt prices one location's cross-entropy under the pending move,
// stashing the trial signature powers in ls for a later Commit.
func (e *deltaEvaluator) lossAt(ls *locState, s, k int, dx complex128) float64 {
	est := e.o.Est
	nSlots := len(ls.y)
	nAnts := len(est.Ants)
	sigma := est.SurfIdx
	nu := est.NoisePower

	// Trial measurement: y is affine in the phasors, so only the moved
	// element's coefficient enters.
	var yPow float64
	for i := range ls.y {
		v := ls.y[i]
		if c := ls.m.Coef[i][s][k]; c != 0 {
			v += c * dx
		}
		e.ty[i] = v
		yPow += real(v)*real(v) + imag(v)*imag(v)
	}

	// Correlations are re-summed over slots each trial (no accumulation
	// across commits), so the cached state cannot drift bin-by-bin.
	for b := range ls.mm {
		var rho complex128
		var mPow float64
		if s == sigma {
			row := ls.mm[b]
			leg := est.apLeg
			for i := 0; i < nSlots; i++ {
				mv := row[i]
				if l := leg[i][k]; l != 0 {
					mv += ls.m.SteerGeo[i/nAnts][b][k] * l * dx
				}
				rho += e.ty[i] * cmplx.Conj(mv)
				mPow += real(mv)*real(mv) + imag(mv)*imag(mv)
			}
		} else {
			row := ls.mm[b]
			mPow = ls.mPow[b]
			for i := 0; i < nSlots; i++ {
				rho += e.ty[i] * cmplx.Conj(row[i])
			}
		}
		ls.tMPow[b] = mPow
		num := real(rho)*real(rho) + imag(rho)*imag(rho) + nu*mPow
		den := (yPow+float64(nSlots)*nu)*mPow + 1e-300
		e.spec[b] = num / den
	}
	return softmaxCE(e.spec, e.soft, e.o.Beta, ls.m.TrueBin)
}

// Commit implements optimize.DeltaEvaluator: it re-applies the pending
// move's exact delta arithmetic to every location's cached state.
func (e *deltaEvaluator) Commit() {
	if !e.pending {
		return
	}
	est := e.o.Est
	nAnts := len(est.Ants)
	sigma := est.SurfIdx
	s, k, dx := e.ps, e.pk, e.dx
	for _, ls := range e.locs {
		for i := range ls.y {
			if c := ls.m.Coef[i][s][k]; c != 0 {
				ls.y[i] += c * dx
			}
		}
		if s == sigma {
			for b := range ls.mm {
				row := ls.mm[b]
				for i := range row {
					if l := est.apLeg[i][k]; l != 0 {
						row[i] += ls.m.SteerGeo[i/nAnts][b][k] * l * dx
					}
				}
			}
		}
		copy(ls.mPow, ls.tMPow)
	}
	e.x[s][k] = e.px
	e.loss = e.trial
	e.pending = false
}

// Revert implements optimize.DeltaEvaluator.
func (e *deltaEvaluator) Revert() { e.pending = false }

// Clone implements optimize.ParallelDeltaEvaluator: the clone deep-copies
// the committed phasors and every location's cached measurement, signature
// matrix, and signature powers, and owns fresh trial scratch. Commit applies
// exact delta arithmetic (y and mm are affine in the moved phasor with
// constant coefficients), so replaying a move sequence on a clone stays
// bit-identical to the original.
func (e *deltaEvaluator) Clone() optimize.DeltaEvaluator {
	x := make([][]complex128, len(e.x))
	for s, xs := range e.x {
		cs := make([]complex128, len(xs))
		copy(cs, xs)
		x[s] = cs
	}
	locs := make([]*locState, len(e.locs))
	for li, ls := range e.locs {
		c := &locState{
			m:     ls.m,
			y:     make([]complex128, len(ls.y)),
			mm:    make([][]complex128, len(ls.mm)),
			mPow:  make([]float64, len(ls.mPow)),
			tMPow: make([]float64, len(ls.tMPow)),
		}
		copy(c.y, ls.y)
		copy(c.mPow, ls.mPow)
		for b, row := range ls.mm {
			cr := make([]complex128, len(row))
			copy(cr, row)
			c.mm[b] = cr
		}
		locs[li] = c
	}
	return &deltaEvaluator{
		o: e.o, x: x, locs: locs, loss: e.loss,
		ty:   make([]complex128, len(e.ty)),
		spec: make([]float64, len(e.spec)),
		soft: make([]float64, len(e.soft)),
	}
}

// IndependentElements implements optimize.ParallelDeltaEvaluator: true —
// the cached measurement y and signatures mm are affine in each element's
// phasor with constant coefficients (Coef, SteerGeo·apLeg), with no
// cross-element terms.
func (e *deltaEvaluator) IndependentElements() bool { return true }
