package sensing

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// newTwoSurfaceRig builds a rig whose simulator carries a second,
// non-sensing surface, so delta moves hit both the sensing-surface branch
// (measurement and signatures change) and the other-surface branch (only
// the measurement changes).
func newTwoSurfaceRig(t *testing.T) *testRig {
	t.Helper()
	pitch := em.Wavelength(em.Band24G) / 2
	panel := geom.RectXY(geom.V(3*pitch/2+0.05, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 3*pitch+0.1, 3*pitch+0.1)
	s, err := surface.New("ap", panel, surface.Layout{Rows: 3, Cols: 3, PitchU: pitch, PitchV: pitch}, surface.Reflective, em.CosinePattern{Q: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	panel2 := geom.RectXY(geom.V(-1.2, 0.2, 1), geom.V(0, 1, 0), geom.V(0, 0, 1), 2*pitch+0.1, 2*pitch+0.1)
	s2, err := surface.New("aux", panel2, surface.Layout{Rows: 2, Cols: 2, PitchU: pitch, PitchV: pitch}, surface.Reflective, em.CosinePattern{Q: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := rfsim.New(scene.New("free"), em.Band24G, s, s2)
	if err != nil {
		t.Fatal(err)
	}
	ap := geom.V(2.0, 2.5, 1.3)
	ants := ULA(ap, geom.V(1, 0, 0), 4, em.Wavelength(em.Band24G)/2)
	est, err := NewEstimator(sim, 0, ants,
		DefaultBins(7, 60*math.Pi/180),
		DefaultSubcarriers(em.Band24G, 400e6, 3))
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{sim: sim, s: s, est: est, ap: ap}
}

// TestLocalizationDeltaParity checks the sensing delta evaluator against
// full evaluation over a random Try/Commit/Revert sequence.
func TestLocalizationDeltaParity(t *testing.T) {
	rig := newTwoSurfaceRig(t)
	rig.est.NoisePower = 1e-12
	locs := []*Measurement{
		rig.est.Measure(rig.s.Panel.Center().Add(geom.V(0.4, 2.0, 0))),
		rig.est.Measure(rig.s.Panel.Center().Add(geom.V(-0.8, 1.6, 0))),
		rig.est.Measure(rig.s.Panel.Center().Add(geom.V(0.1, 2.4, 0))),
	}
	obj, err := NewLocalizationObjective(rig.est, locs, 20)
	if err != nil {
		t.Fatal(err)
	}
	shape := obj.Shape()
	if len(shape) != 2 {
		t.Fatalf("expected two surfaces, got shape %v", shape)
	}
	r := rand.New(rand.NewSource(31))
	phases := randomPhases(r, shape)

	ev := obj.NewDeltaEvaluator(phases)
	if ev == nil {
		t.Fatal("NewDeltaEvaluator returned nil")
	}
	full, _ := obj.Eval(phases, false)
	const tol = 1e-9
	if d := math.Abs(ev.Loss() - full); d > tol {
		t.Fatalf("initial loss off by %g", d)
	}
	sawOther := false
	for i := 0; i < 60; i++ {
		s := r.Intn(len(shape))
		k := r.Intn(shape[s])
		if s != rig.est.SurfIdx {
			sawOther = true
		}
		phi := r.Float64() * 2 * math.Pi
		got := ev.TryDelta(s, k, phi)

		old := phases[s][k]
		phases[s][k] = phi
		want, _ := obj.Eval(phases, false)
		if d := math.Abs(got - want); d > tol {
			t.Fatalf("step %d (s=%d k=%d): trial off by %g (delta %v, full %v)", i, s, k, d, got, want)
		}
		if r.Intn(2) == 0 {
			ev.Commit()
			if d := math.Abs(ev.Loss() - want); d > tol {
				t.Fatalf("step %d: committed loss off by %g", i, d)
			}
		} else {
			ev.Revert()
			phases[s][k] = old
			prev, _ := obj.Eval(phases, false)
			if d := math.Abs(ev.Loss() - prev); d > tol {
				t.Fatalf("step %d: reverted loss off by %g", i, d)
			}
		}
	}
	if !sawOther {
		t.Error("random walk never touched the non-sensing surface")
	}
}

// TestLocalizationParallelSweepParity: parallel CoordinateDescent and
// Anneal over the sensing loss reproduce the serial run bit-for-bit — the
// clone carries the full cached measurement/signature state and commits
// replay exactly.
func TestLocalizationParallelSweepParity(t *testing.T) {
	rig := newTwoSurfaceRig(t)
	rig.est.NoisePower = 1e-12
	locs := []*Measurement{
		rig.est.Measure(rig.s.Panel.Center().Add(geom.V(0.4, 2.0, 0))),
		rig.est.Measure(rig.s.Panel.Center().Add(geom.V(-0.8, 1.6, 0))),
	}
	obj, err := NewLocalizationObjective(rig.est, locs, 20)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(33))
	init := randomPhases(r, obj.Shape())
	ctx := context.Background()

	check := func(name string, serial, par optimize.Result) {
		t.Helper()
		if par.Loss != serial.Loss {
			t.Errorf("%s loss: serial %.17g, parallel %.17g", name, serial.Loss, par.Loss)
		}
		if par.Evals != serial.Evals {
			t.Errorf("%s evals: serial %d, parallel %d", name, serial.Evals, par.Evals)
		}
		for s := range serial.Phases {
			for k := range serial.Phases[s] {
				if par.Phases[s][k] != serial.Phases[s][k] {
					t.Fatalf("%s phases diverge at s=%d k=%d", name, s, k)
				}
			}
		}
	}

	serialCD := optimize.CoordinateDescent(ctx, obj, init, nil, optimize.Options{MaxIters: 2})
	serialAn := optimize.Anneal(ctx, obj, init, optimize.Options{MaxIters: 60, Seed: 5})
	for _, w := range []int{2, 4} {
		eng := engine.New(engine.Options{Workers: w})
		parCD := optimize.CoordinateDescent(ctx, obj, init, nil, optimize.Options{MaxIters: 2, Engine: eng, Workers: w})
		check("cd", serialCD, parCD)
		parAn := optimize.Anneal(ctx, obj, init, optimize.Options{MaxIters: 60, Seed: 5, Engine: eng, Workers: w})
		check("anneal", serialAn, parAn)
	}
}
