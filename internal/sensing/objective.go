package sensing

import (
	"fmt"
	"math"
	"math/cmplx"

	"surfos/internal/em"
	"surfos/internal/optimize"
)

// LocalizationObjective is the sensing task loss from the paper's §4: "the
// cross-entropy between the estimated and true AoA". The estimated AoA is
// the softmax of the noise-regularized matched-filter spectrum over angle
// bins; the true AoA is the one-hot bin of each training location.
// Minimizing it makes the surface configuration both deliver signal power
// to the locations (or the spectrum flattens into noise) and preserve the
// angular diversity the estimator needs.
//
// The objective is differentiable in every surface element phase: both the
// measurement y and the signature m are affine in the element phasors, and
// the spectrum is a smooth function of (y, m).
type LocalizationObjective struct {
	Est *Estimator
	// Locations are the training measurements (typically a grid over the
	// room the sensing service covers).
	Locations []*Measurement
	// Beta is the softmax sharpness over the spectrum (default 30).
	Beta float64

	shape []int
}

// NewLocalizationObjective validates and builds the objective.
func NewLocalizationObjective(est *Estimator, locs []*Measurement, beta float64) (*LocalizationObjective, error) {
	if est == nil {
		return nil, fmt.Errorf("sensing: nil estimator")
	}
	if len(locs) == 0 {
		return nil, fmt.Errorf("sensing: objective needs at least one location")
	}
	if beta == 0 {
		beta = 30
	}
	shape := make([]int, len(locs[0].Coef[0]))
	for s := range shape {
		shape[s] = len(locs[0].Coef[0][s])
	}
	for li, m := range locs {
		if len(m.Coef) != est.NumSlots() {
			return nil, fmt.Errorf("sensing: location %d has %d slots, want %d", li, len(m.Coef), est.NumSlots())
		}
		if m.SteerGeo == nil {
			return nil, fmt.Errorf("sensing: location %d has no signature dictionary (use Estimator.Measure)", li)
		}
		for i := range m.Coef {
			if len(m.Coef[i]) != len(shape) {
				return nil, fmt.Errorf("sensing: location %d surface count mismatch", li)
			}
			for s := range m.Coef[i] {
				if len(m.Coef[i][s]) != shape[s] {
					return nil, fmt.Errorf("sensing: location %d surface %d element mismatch", li, s)
				}
			}
		}
	}
	return &LocalizationObjective{Est: est, Locations: locs, Beta: beta, shape: shape}, nil
}

// Shape implements optimize.Objective.
func (o *LocalizationObjective) Shape() []int { return o.shape }

// CloneForWorker implements optimize.ParallelObjective. Eval allocates its
// buffers per call and Observe/signatureRow write only into fresh storage,
// so the objective holds no cross-call scratch and the receiver itself is
// safe for concurrent Eval from multiple workers.
func (o *LocalizationObjective) CloneForWorker() optimize.Objective { return o }

// Eval implements optimize.Objective: mean cross-entropy across locations
// and its gradient.
func (o *LocalizationObjective) Eval(phases [][]float64, wantGrad bool) (float64, [][]float64) {
	x := em.Phasors(phases)
	var loss float64
	var grad [][]float64
	if wantGrad {
		grad = make([][]float64, len(o.shape))
		for s, n := range o.shape {
			grad[s] = make([]float64, n)
		}
	}
	inv := 1 / float64(len(o.Locations))
	for _, m := range o.Locations {
		l := o.evalOne(m, x, grad, inv, wantGrad)
		loss += l * inv
	}
	return loss, grad
}

// evalOne computes one location's cross-entropy and accumulates scaled
// gradients in place.
func (o *LocalizationObjective) evalOne(m *Measurement, x [][]complex128, grad [][]float64, gscale float64, wantGrad bool) float64 {
	e := o.Est
	nSlots := e.NumSlots()
	nAnts := len(e.Ants)
	nb := len(e.Bins)
	sigma := e.SurfIdx
	xs := x[sigma]
	nu := e.NoisePower

	// Measurement vector and power (surface-borne part only; the static
	// environment response is cancelled exactly as in Estimator.Estimate).
	y := m.Observe(x, 0, nil)
	for i := range y {
		y[i] -= m.Direct[i]
	}
	var yPow float64
	for _, v := range y {
		yPow += real(v)*real(v) + imag(v)*imag(v)
	}

	// Signatures, correlations, spectrum.
	mm := make([][]complex128, nb) // mm[b][slot]
	rho := make([]complex128, nb)
	mPow := make([]float64, nb)
	spec := make([]float64, nb)
	for b := 0; b < nb; b++ {
		mi := make([]complex128, nSlots)
		e.signatureRow(m, b, xs, mi)
		for i := 0; i < nSlots; i++ {
			rho[b] += y[i] * cmplx.Conj(mi[i])
			mPow[b] += real(mi[i])*real(mi[i]) + imag(mi[i])*imag(mi[i])
		}
		mm[b] = mi
		num := real(rho[b])*real(rho[b]) + imag(rho[b])*imag(rho[b]) + nu*mPow[b]
		den := (yPow+float64(nSlots)*nu)*mPow[b] + 1e-300
		spec[b] = num / den
	}

	soft := make([]float64, nb)
	loss := softmaxCE(spec, soft, o.Beta, m.TrueBin)

	if !wantGrad {
		return loss
	}

	// η_sk = Σ_slots conj(y)·B (for dY).
	eta := make([][]complex128, len(o.shape))
	for s, n := range o.shape {
		eta[s] = make([]complex128, n)
	}
	for i := 0; i < nSlots; i++ {
		cy := cmplx.Conj(y[i])
		for s := range m.Coef[i] {
			es := eta[s]
			for k, c := range m.Coef[i][s] {
				if c != 0 {
					es[k] += cy * c
				}
			}
		}
	}

	j := complex(0, 1)
	yTot := yPow + float64(nSlots)*nu
	for b := 0; b < nb; b++ {
		w := o.Beta * (soft[b] - b2delta(b, m.TrueBin))
		if w == 0 {
			continue
		}
		den := yTot*mPow[b] + 1e-300
		crho := cmplx.Conj(rho[b])
		num := real(rho[b])*real(rho[b]) + imag(rho[b])*imag(rho[b]) + nu*mPow[b]

		// Per-element accumulators for this bin:
		// α_sk = Σ_slots B·conj(m_b); γ_k = Σ_slots y·conj(S_b);
		// ξ_k = Σ_slots conj(m_b)·S_b   (sensing surface only), where
		// S_b,slot,k = SteerGeo[f(slot)][b][k]·apLeg[slot][k].
		alpha := make([][]complex128, len(o.shape))
		for s, n := range o.shape {
			alpha[s] = make([]complex128, n)
		}
		gammav := make([]complex128, o.shape[sigma])
		xiv := make([]complex128, o.shape[sigma])
		for i := 0; i < nSlots; i++ {
			cm := cmplx.Conj(mm[b][i])
			for s := range m.Coef[i] {
				as := alpha[s]
				for k, c := range m.Coef[i][s] {
					if c != 0 {
						as[k] += c * cm
					}
				}
			}
			geo := m.SteerGeo[i/nAnts][b]
			leg := e.apLeg[i]
			yi := y[i]
			for k, g := range geo {
				if l := leg[k]; l != 0 {
					sv := g * l
					gammav[k] += yi * cmplx.Conj(sv)
					xiv[k] += cm * sv
				}
			}
		}

		for s := range o.shape {
			gs := grad[s]
			for k := 0; k < o.shape[s]; k++ {
				xk := x[s][k]
				drho := j * xk * alpha[s][k]
				var dM float64
				if s == sigma {
					drho -= j * cmplx.Conj(xk) * gammav[k]
					dM = 2 * real(j*xk*xiv[k])
				}
				dY := 2 * real(j*xk*eta[s][k])
				dNum := 2*real(crho*drho) + nu*dM
				dDen := dY*mPow[b] + yTot*dM
				dP := (dNum*den - num*dDen) / (den * den)
				gs[k] += gscale * w * dP
			}
		}
	}
	return loss
}

// softmaxCE writes softmax(β·spec) into soft and returns the cross-entropy
// against the one-hot trueBin. It is the single softmax/CE implementation
// shared by the full evaluation and the delta evaluator, so the two paths
// agree bit-for-bit on identical spectra.
func softmaxCE(spec, soft []float64, beta float64, trueBin int) float64 {
	zmax := math.Inf(-1)
	for _, p := range spec {
		if beta*p > zmax {
			zmax = beta * p
		}
	}
	var sum float64
	for b, p := range spec {
		soft[b] = math.Exp(beta*p - zmax)
		sum += soft[b]
	}
	for b := range soft {
		soft[b] /= sum
	}
	return -math.Log(math.Max(soft[trueBin], 1e-300))
}

func b2delta(b, t int) float64 {
	if b == t {
		return 1
	}
	return 0
}

// MeanLocalizationError evaluates the deployed estimator end-to-end at the
// given phases: for each location, observe (with noise of amplitude
// noiseAmp when seed >= 0), estimate, and average the localization error in
// meters.
func (o *LocalizationObjective) MeanLocalizationError(phases [][]float64, noiseAmp float64, seed int64) float64 {
	rng := newRng(seed)
	var sum float64
	for _, m := range o.Locations {
		_, errM := o.Est.Estimate(m, phases, noiseAmp, rng)
		sum += errM
	}
	return sum / float64(len(o.Locations))
}
