package sensing

import "math/rand"

// newRng returns a deterministic RNG for reproducible noisy evaluations, or
// nil when seed < 0 (noiseless).
func newRng(seed int64) *rand.Rand {
	if seed < 0 {
		return nil
	}
	return rand.New(rand.NewSource(seed))
}
