package sensing

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// testRig builds a free-space rig: a reflective surface at the origin
// facing +y, the AP off to one side in front, clients in front.
type testRig struct {
	sim *rfsim.Simulator
	s   *surface.Surface
	est *Estimator
	ap  geom.Vec3
}

func newRig(t *testing.T, rows, cols, nBins, nSub int) *testRig {
	t.Helper()
	pitch := em.Wavelength(em.Band24G) / 2
	panel := geom.RectXY(geom.V(float64(cols)*pitch/2+0.05, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), float64(cols)*pitch+0.1, float64(rows)*pitch+0.1)
	s, err := surface.New("ap", panel, surface.Layout{Rows: rows, Cols: cols, PitchU: pitch, PitchV: pitch}, surface.Reflective, em.CosinePattern{Q: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := rfsim.New(scene.New("free"), em.Band24G, s)
	if err != nil {
		t.Fatal(err)
	}
	ap := geom.V(2.0, 2.5, 1.3)
	ants := ULA(ap, geom.V(1, 0, 0), 4, em.Wavelength(em.Band24G)/2)
	est, err := NewEstimator(sim, 0, ants,
		DefaultBins(nBins, 60*math.Pi/180),
		DefaultSubcarriers(em.Band24G, 400e6, nSub))
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{sim: sim, s: s, est: est, ap: ap}
}

// newRig60 is a 60 GHz rig with a sparse (4λ-pitch) wide aperture and
// 802.11ad-class sounding bandwidth. Wideband AoA through a single static
// configuration needs the aperture delay spread to exceed the delay
// resolution c/BW, which holds at 60 GHz but not at 24 GHz/400 MHz.
func newRig60(t *testing.T, rows, cols, nBins, nSub int) *testRig {
	t.Helper()
	pitch := 2 * em.Wavelength(em.Band60G) // 1 cm
	w := float64(cols)*pitch + 0.02
	h := float64(rows)*pitch + 0.02
	panel := geom.RectXY(geom.V(w/2, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), w, h)
	s, err := surface.New("ap60", panel, surface.Layout{Rows: rows, Cols: cols, PitchU: pitch, PitchV: pitch}, surface.Reflective, em.CosinePattern{Q: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := rfsim.New(scene.New("free"), em.Band60G, s)
	if err != nil {
		t.Fatal(err)
	}
	ap := geom.V(2.0, 2.5, 1.3)
	ants := ULA(ap, geom.V(1, 0, 0), 16, em.Wavelength(em.Band60G)/2)
	est, err := NewEstimator(sim, 0, ants,
		DefaultBins(nBins, 60*math.Pi/180),
		DefaultSubcarriers(em.Band60G, 1.8e9, nSub))
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{sim: sim, s: s, est: est, ap: ap}
}

func randomPhases(r *rand.Rand, shape []int) [][]float64 {
	p := make([][]float64, len(shape))
	for s, n := range shape {
		p[s] = make([]float64, n)
		for k := range p[s] {
			p[s][k] = r.Float64() * 2 * math.Pi
		}
	}
	return p
}

func TestTrueAoAGeometry(t *testing.T) {
	rig := newRig(t, 4, 4, 21, 3)
	center := rig.s.Panel.Center()

	// Straight ahead (along +y normal): zero angle.
	th, d := rig.est.TrueAoA(center.Add(geom.V(0, 2, 0)))
	if math.Abs(th) > 1e-9 {
		t.Errorf("boresight AoA = %v, want 0", th)
	}
	if math.Abs(d-2) > 1e-9 {
		t.Errorf("dist = %v, want 2", d)
	}
	// Toward the U axis (-x): positive angle.
	th2, _ := rig.est.TrueAoA(center.Add(geom.V(-1, 1, 0)))
	if math.Abs(th2-math.Pi/4) > 1e-9 {
		t.Errorf("45° AoA = %v", th2)
	}
	// Opposite: negative.
	th3, _ := rig.est.TrueAoA(center.Add(geom.V(1, 1, 0)))
	if math.Abs(th3+math.Pi/4) > 1e-9 {
		t.Errorf("-45° AoA = %v", th3)
	}
}

func TestTrueBin(t *testing.T) {
	rig := newRig(t, 4, 4, 21, 3)
	center := rig.s.Panel.Center()
	c := center.Add(geom.V(0, 3, 0))
	b := rig.est.TrueBin(c)
	if rig.est.Bins[b] != 0 && math.Abs(rig.est.Bins[b]) > 6.1*math.Pi/180 {
		t.Errorf("boresight bin angle = %v", rig.est.Bins[b])
	}
}

func TestSpectrumPeaksAtTrueBinDiverseConfig(t *testing.T) {
	rig := newRig60(t, 8, 32, 161, 16)
	r := rand.New(rand.NewSource(5))
	phases := randomPhases(r, []int{rig.s.NumElements()})

	// A random (diverse) configuration preserves angular information, but
	// individual clients can land in speckle nulls, so assert the
	// distribution (as the paper's CDFs do), not each point.
	var under50cm int
	var errs []float64
	clients := []geom.Vec3{
		{X: 0, Y: 2.5}, {X: -1.2, Y: 2.0}, {X: 1.0, Y: 2.2}, {X: -0.5, Y: 2.8},
		{X: 0.5, Y: 1.8}, {X: -0.9, Y: 2.4}, {X: 0.9, Y: 2.7}, {X: 0.2, Y: 2.1},
		{X: -0.3, Y: 1.6}, {X: 0.7, Y: 3.0},
	}
	for _, d := range clients {
		client := rig.s.Panel.Center().Add(d)
		m := rig.est.Measure(client)
		_, locErr := rig.est.Estimate(m, phases, 0, nil)
		if locErr < 0.5 {
			under50cm++
		}
		errs = append(errs, locErr)
	}
	if under50cm < 8 {
		t.Errorf("only %d/10 clients under 0.5 m error (errs %v)", under50cm, errs)
	}
	if med := rfsim.Median(errs); med > 0.2 {
		t.Errorf("median localization error %v m, want < 0.2 (errs %v)", med, errs)
	}
}

func TestNoiseFlattensSpectrum(t *testing.T) {
	rig := newRig60(t, 6, 12, 15, 8)
	r := rand.New(rand.NewSource(6))
	phases := randomPhases(r, []int{rig.s.NumElements()})
	client := rig.s.Panel.Center().Add(geom.V(0.5, 2.2, 0))
	m := rig.est.Measure(client)
	x := optimize.Phasors(phases)
	y := m.Observe(x, 0, nil)

	clean := rig.est.Spectrum(m, y, x)
	// Crank noise power far above signal: spectrum must flatten toward 1/F.
	rig.est.NoisePower = 1e6
	noisy := rig.est.Spectrum(m, y, x)
	rig.est.NoisePower = 0

	spreadClean := maxf(clean) - minf(clean)
	spreadNoisy := maxf(noisy) - minf(noisy)
	if spreadNoisy > spreadClean/10 {
		t.Errorf("noise did not flatten spectrum: clean spread %v, noisy %v", spreadClean, spreadNoisy)
	}
	want := 1.0 / float64(rig.est.NumSlots())
	for b, p := range noisy {
		if math.Abs(p-want) > 0.02 {
			t.Errorf("noisy spectrum bin %d = %v, want ≈%v", b, p, want)
		}
	}
}

func maxf(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func minf(v []float64) float64 {
	m := math.Inf(1)
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

func TestLocalizationObjectiveGradient(t *testing.T) {
	rig := newRig(t, 3, 3, 7, 3)
	rig.est.NoisePower = 1e-12
	locs := []*Measurement{
		rig.est.Measure(rig.s.Panel.Center().Add(geom.V(0.4, 2.0, 0))),
		rig.est.Measure(rig.s.Panel.Center().Add(geom.V(-0.8, 1.6, 0))),
	}
	obj, err := NewLocalizationObjective(rig.est, locs, 20)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	phases := randomPhases(r, obj.Shape())

	_, grad := obj.Eval(phases, true)
	const eps = 1e-6
	for s := range phases {
		for k := range phases[s] {
			p := optimize.ClonePhases(phases)
			p[s][k] += eps
			lp, _ := obj.Eval(p, false)
			p[s][k] -= 2 * eps
			lm, _ := obj.Eval(p, false)
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-grad[s][k]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("grad s=%d k=%d: analytic %v numeric %v", s, k, grad[s][k], num)
			}
		}
	}
}

func TestLocalizationObjectiveValidation(t *testing.T) {
	rig := newRig(t, 3, 3, 7, 3)
	if _, err := NewLocalizationObjective(nil, nil, 0); err == nil {
		t.Error("nil estimator accepted")
	}
	if _, err := NewLocalizationObjective(rig.est, nil, 0); err == nil {
		t.Error("empty locations accepted")
	}
	m := rig.est.Measure(rig.s.Panel.Center().Add(geom.V(0, 2, 0)))
	m.SteerGeo = nil
	if _, err := NewLocalizationObjective(rig.est, []*Measurement{m}, 0); err == nil {
		t.Error("measurement without dictionary accepted")
	}
}

func TestOptimizingLocalizationReducesLoss(t *testing.T) {
	rig := newRig60(t, 4, 12, 15, 8)
	rig.est.NoisePower = NoiseAmplitude(rfsim.DefaultBudget())
	rig.est.NoisePower *= rig.est.NoisePower

	var locs []*Measurement
	for _, d := range []geom.Vec3{{X: 0, Y: 2, Z: 0}, {X: -0.9, Y: 1.8, Z: 0}, {X: 0.8, Y: 2.3, Z: 0}} {
		locs = append(locs, rig.est.Measure(rig.s.Panel.Center().Add(d)))
	}
	obj, err := NewLocalizationObjective(rig.est, locs, 30)
	if err != nil {
		t.Fatal(err)
	}
	init := optimize.ZeroPhases(obj.Shape())
	start, _ := obj.Eval(init, false)
	res := optimize.Adam(context.Background(), obj, init, optimize.Options{MaxIters: 120, LR: 0.2})
	if res.Loss >= start {
		t.Errorf("optimization did not reduce localization loss: %v -> %v", start, res.Loss)
	}
}

func TestEstimatorValidation(t *testing.T) {
	rig := newRig(t, 3, 3, 7, 3)
	ants := rig.est.Ants
	if _, err := NewEstimator(nil, 0, ants, rig.est.Bins, rig.est.Subcarriers); err == nil {
		t.Error("nil sim accepted")
	}
	if _, err := NewEstimator(rig.sim, 5, ants, rig.est.Bins, rig.est.Subcarriers); err == nil {
		t.Error("bad surface index accepted")
	}
	if _, err := NewEstimator(rig.sim, 0, nil, rig.est.Bins, rig.est.Subcarriers); err == nil {
		t.Error("empty antenna array accepted")
	}
	if _, err := NewEstimator(rig.sim, 0, ants, []float64{0}, rig.est.Subcarriers); err == nil {
		t.Error("single bin accepted")
	}
	if _, err := NewEstimator(rig.sim, 0, ants, rig.est.Bins, []float64{1e9}); err == nil {
		t.Error("single subcarrier accepted")
	}
}

func TestDefaultGrids(t *testing.T) {
	b := DefaultBins(5, 1.0)
	if len(b) != 5 || b[0] != -1 || b[4] != 1 || b[2] != 0 {
		t.Errorf("bins = %v", b)
	}
	s := DefaultSubcarriers(24e9, 400e6, 3)
	if s[0] != 24e9-200e6 || s[2] != 24e9+200e6 || s[1] != 24e9 {
		t.Errorf("subcarriers = %v", s)
	}
}

func TestNoiseAmplitude(t *testing.T) {
	lb := rfsim.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 20, NoiseFigureDB: 7, BandwidthHz: 400e6}
	amp := NoiseAmplitude(lb)
	// A channel with |h| = amp should sit at exactly 0 dB SNR.
	snr := lb.SNRdB(complex(amp, 0))
	if math.Abs(snr) > 1e-9 {
		t.Errorf("noise amplitude inconsistent: SNR at |h|=amp is %v dB, want 0", snr)
	}
}

func TestLocalizationError(t *testing.T) {
	if got := LocalizationError(0.1, 0.0, 2); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("loc err = %v, want 0.2", got)
	}
	if got := LocalizationError(-0.1, 0.1, 3); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("loc err = %v, want 0.6", got)
	}
}

func TestMeanLocalizationErrorDeterministic(t *testing.T) {
	rig := newRig(t, 6, 6, 11, 3)
	var locs []*Measurement
	locs = append(locs, rig.est.Measure(rig.s.Panel.Center().Add(geom.V(0.4, 2, 0))))
	obj, _ := NewLocalizationObjective(rig.est, locs, 0)
	r := rand.New(rand.NewSource(8))
	phases := randomPhases(r, obj.Shape())
	a := obj.MeanLocalizationError(phases, 1e-7, 42)
	b := obj.MeanLocalizationError(phases, 1e-7, 42)
	if a != b {
		t.Errorf("same seed gave different errors: %v vs %v", a, b)
	}
}
