package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"surfos/internal/telemetry"
)

// TestCrashRecoveryAtEveryBoundary pins the recovery invariant: for a WAL
// truncated at *any* record boundary — simulating a crash after that many
// records reached disk — a restart recovers exactly the tasks that were
// submitted and not ended at that point. Each boundary is additionally
// re-run with a torn half-record appended (crash mid-write of the next
// record), which must recover to the same state.
//
// `make test-crash` runs this suite under the race detector.
func TestCrashRecoveryAtEveryBoundary(t *testing.T) {
	// Scripted control-plane history: submissions, reschedules, a park, a
	// failure, a termination, and device churn interleaved.
	history := []telemetry.TaskEvent{
		event(1, telemetry.TaskSubmitted, specJSON(1)),
		event(1, telemetry.TaskScheduled, nil),
		event(1, telemetry.TaskRunning, nil),
		event(2, telemetry.TaskSubmitted, specJSON(2)),
		{State: telemetry.DeviceDegraded, DeviceID: "east", Err: "3 stuck elements"},
		event(2, telemetry.TaskRunning, nil),
		event(3, telemetry.TaskSubmitted, specJSON(3)),
		event(3, telemetry.TaskFailed, nil),
		event(1, telemetry.TaskIdle, nil),
		{State: telemetry.DeviceDead, DeviceID: "east", Err: "heartbeat lost"},
		event(4, telemetry.TaskSubmitted, specJSON(4)),
		event(4, telemetry.TaskRunning, nil),
		event(2, telemetry.TaskDone, nil),
		event(1, telemetry.TaskResumed, nil),
		event(1, telemetry.TaskRunning, nil),
		{State: telemetry.DeviceRecovered, DeviceID: "east"},
		event(4, telemetry.TaskDone, nil),
	}

	// Write the full WAL once, journal-style, no snapshots (the boundary
	// sweep needs every record on disk).
	master := t.TempDir()
	s, st, err := Open(master)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(s, st)
	j.SetSnapshotEvery(0)
	for _, ev := range history {
		if err := j.Consume(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(master, walName))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(walBytes, []byte("\n"))
	if len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}

	// Decode each line once so expectations can be folded per boundary.
	recs := make([]Record, len(lines))
	for i, ln := range lines {
		if err := json.Unmarshal(bytes.TrimSuffix(ln, []byte("\n")), &recs[i]); err != nil {
			t.Fatal(err)
		}
	}

	for boundary := 0; boundary <= len(lines); boundary++ {
		for _, torn := range []bool{false, true} {
			name := fmt.Sprintf("boundary=%d", boundary)
			if torn {
				name += "+torn"
			}
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				prefix := bytes.Join(lines[:boundary], nil)
				if torn {
					// Half of the next record (or garbage past the end),
					// never newline-terminated.
					next := []byte(`{"seq":99999,"kind":"task_state","da`)
					if boundary < len(lines) {
						next = lines[boundary][:len(lines[boundary])/2]
						next = bytes.TrimSuffix(next, []byte("\n"))
					}
					prefix = append(append([]byte{}, prefix...), next...)
				}
				if err := os.WriteFile(filepath.Join(dir, walName), prefix, 0o644); err != nil {
					t.Fatal(err)
				}

				s2, got, err := Open(dir)
				if err != nil {
					t.Fatalf("recovery at boundary %d (torn=%v): %v", boundary, torn, err)
				}
				defer s2.Close()
				if want := uint64(boundary); s2.Seq() != want {
					t.Errorf("seq = %d, want %d", s2.Seq(), want)
				}

				// Expected live set: fold the first `boundary` records.
				want := NewState()
				for _, r := range recs[:boundary] {
					if err := want.Apply(r); err != nil {
						t.Fatal(err)
					}
				}
				wantLive := want.Live()
				gotLive := got.Live()
				if len(gotLive) != len(wantLive) {
					t.Fatalf("recovered %d live task(s), want %d", len(gotLive), len(wantLive))
				}
				for i := range wantLive {
					if gotLive[i].ID != wantLive[i].ID || gotLive[i].State != wantLive[i].State {
						t.Errorf("live[%d] = %d/%s, want %d/%s",
							i, gotLive[i].ID, gotLive[i].State, wantLive[i].ID, wantLive[i].State)
					}
					if !bytes.Equal(gotLive[i].Spec, wantLive[i].Spec) {
						t.Errorf("live[%d] spec diverged", i)
					}
				}
				// Device health must replay to the same last transition.
				wantDevs, gotDevs := want.DeviceHealth(), got.DeviceHealth()
				if len(gotDevs) != len(wantDevs) {
					t.Fatalf("recovered %d device record(s), want %d", len(gotDevs), len(wantDevs))
				}
				for i := range wantDevs {
					if *gotDevs[i] != *wantDevs[i] {
						t.Errorf("device[%d] = %+v, want %+v", i, gotDevs[i], wantDevs[i])
					}
				}

				// The journal must be appendable after every recovery: the
				// next epoch writes its own records here.
				if _, err := s2.Append(KindDevice, DeviceRecord{DeviceID: "x", State: "device_recovered"}); err != nil {
					t.Errorf("append after recovery: %v", err)
				}
			})
		}
	}
}
