package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"surfos/internal/telemetry"
)

// TestCrashRecoveryAtEveryBoundary pins the recovery invariant: for a WAL
// truncated at *any* record boundary — simulating a crash after that many
// records reached disk — a restart recovers exactly the tasks that were
// submitted and not ended at that point. Each boundary is additionally
// re-run with a torn half-record appended (crash mid-write of the next
// record), which must recover to the same state, and with the final
// record's trailing newline stripped (crash after the bytes but before
// the newline reached disk), which must drop that never-acknowledged
// record. Every recovery is then appended to, closed, and re-opened to
// prove the file recovery leaves behind is itself recoverable.
//
// `make test-crash` runs this suite under the race detector.
func TestCrashRecoveryAtEveryBoundary(t *testing.T) {
	// Scripted control-plane history: submissions, reschedules, a park, a
	// failure, a termination, and device churn interleaved.
	history := []telemetry.TaskEvent{
		event(1, telemetry.TaskSubmitted, specJSON(1)),
		event(1, telemetry.TaskScheduled, nil),
		event(1, telemetry.TaskRunning, nil),
		event(2, telemetry.TaskSubmitted, specJSON(2)),
		{State: telemetry.DeviceDegraded, DeviceID: "east", Err: "3 stuck elements"},
		event(2, telemetry.TaskRunning, nil),
		event(3, telemetry.TaskSubmitted, specJSON(3)),
		event(3, telemetry.TaskFailed, nil),
		event(1, telemetry.TaskIdle, nil),
		{State: telemetry.DeviceDead, DeviceID: "east", Err: "heartbeat lost"},
		event(4, telemetry.TaskSubmitted, specJSON(4)),
		event(4, telemetry.TaskRunning, nil),
		event(2, telemetry.TaskDone, nil),
		event(1, telemetry.TaskResumed, nil),
		event(1, telemetry.TaskRunning, nil),
		{State: telemetry.DeviceRecovered, DeviceID: "east"},
		event(4, telemetry.TaskDone, nil),
	}

	// Write the full WAL once, journal-style, no snapshots (the boundary
	// sweep needs every record on disk).
	master := t.TempDir()
	s, st, err := Open(master)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(s, st)
	j.SetSnapshotEvery(0)
	for _, ev := range history {
		if err := j.Consume(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(master, walName))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(walBytes, []byte("\n"))
	if len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}

	// Decode each line once so expectations can be folded per boundary.
	recs := make([]Record, len(lines))
	for i, ln := range lines {
		if err := json.Unmarshal(bytes.TrimSuffix(ln, []byte("\n")), &recs[i]); err != nil {
			t.Fatal(err)
		}
	}

	for boundary := 0; boundary <= len(lines); boundary++ {
		for _, tear := range []string{"", "torn", "noeol"} {
			if tear == "noeol" && boundary == 0 {
				continue // nothing to strip the newline from
			}
			name := fmt.Sprintf("boundary=%d", boundary)
			if tear != "" {
				name += "+" + tear
			}
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				prefix := bytes.Join(lines[:boundary], nil)
				// eff is how many records recovery must surface.
				eff := boundary
				switch tear {
				case "torn":
					// Half of the next record (or garbage past the end),
					// never newline-terminated.
					next := []byte(`{"seq":99999,"kind":"task_state","da`)
					if boundary < len(lines) {
						next = lines[boundary][:len(lines[boundary])/2]
						next = bytes.TrimSuffix(next, []byte("\n"))
					}
					prefix = append(append([]byte{}, prefix...), next...)
				case "noeol":
					// The crash persisted the final record's bytes but not
					// its newline: the line parses and checksums, yet the
					// record was never acknowledged (Append returns only
					// after the newline is flushed), so recovery must drop
					// it as a truncated tail — keeping it would leave the
					// WAL mid-line and corrupt the next epoch's appends.
					prefix = bytes.TrimSuffix(prefix, []byte("\n"))
					eff--
				}
				if err := os.WriteFile(filepath.Join(dir, walName), prefix, 0o644); err != nil {
					t.Fatal(err)
				}

				s2, got, err := Open(dir)
				if err != nil {
					t.Fatalf("recovery at boundary %d (%s): %v", boundary, tear, err)
				}
				defer s2.Close()
				if want := uint64(eff); s2.Seq() != want {
					t.Errorf("seq = %d, want %d", s2.Seq(), want)
				}

				// Expected live set: fold the first `eff` records.
				want := NewState()
				for _, r := range recs[:eff] {
					if err := want.Apply(r); err != nil {
						t.Fatal(err)
					}
				}
				wantLive := want.Live()
				gotLive := got.Live()
				if len(gotLive) != len(wantLive) {
					t.Fatalf("recovered %d live task(s), want %d", len(gotLive), len(wantLive))
				}
				for i := range wantLive {
					if gotLive[i].ID != wantLive[i].ID || gotLive[i].State != wantLive[i].State {
						t.Errorf("live[%d] = %d/%s, want %d/%s",
							i, gotLive[i].ID, gotLive[i].State, wantLive[i].ID, wantLive[i].State)
					}
					if !bytes.Equal(gotLive[i].Spec, wantLive[i].Spec) {
						t.Errorf("live[%d] spec diverged", i)
					}
				}
				// Device health must replay to the same last transition.
				wantDevs, gotDevs := want.DeviceHealth(), got.DeviceHealth()
				if len(gotDevs) != len(wantDevs) {
					t.Fatalf("recovered %d device record(s), want %d", len(gotDevs), len(wantDevs))
				}
				for i := range wantDevs {
					if *gotDevs[i] != *wantDevs[i] {
						t.Errorf("device[%d] = %+v, want %+v", i, gotDevs[i], wantDevs[i])
					}
				}

				// The journal must be appendable after every recovery, and —
				// the real invariant — the file it leaves behind must itself
				// recover: a truncation that merely let the append succeed
				// but glued it onto a leftover tail would only surface one
				// restart later.
				if _, err := s2.Append(KindDevice, DeviceRecord{DeviceID: "x", State: "device_recovered"}); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
				if err := s2.Close(); err != nil {
					t.Fatal(err)
				}
				s3, got3, err := Open(dir)
				if err != nil {
					t.Fatalf("re-recovery after post-crash append: %v", err)
				}
				defer s3.Close()
				if want := uint64(eff) + 1; s3.Seq() != want {
					t.Errorf("seq after append+reopen = %d, want %d", s3.Seq(), want)
				}
				if dr := got3.Devices["x"]; dr == nil || dr.State != "device_recovered" {
					t.Errorf("post-crash append not recovered: %+v", dr)
				}
			})
		}
	}
}
