package store

import (
	"errors"
	"sync"
	"time"
)

// ErrReleased marks a replication message arriving after the follower
// promoted and handed its store to a journal: the follower is no longer a
// valid writer and must not race the new single writer.
var ErrReleased = errors.New("store: follower released")

// ErrLeaseLive aborts a promotion because the lease was renewed between
// the expiry observation and the durable epoch bump: the primary checked
// in at the last instant, and taking over anyway would run two leaders
// until the next fencing round trip. The caller keeps following.
var ErrLeaseLive = errors.New("store: lease renewed, promotion aborted")

// Follower is the standby side of the replicated pair: it continuously
// replays the primary's snapshot and WAL tail into its own warm store,
// tracks the primary's lease, and promotes itself — bumping the epoch and
// fencing the old primary — when the lease expires.
//
// All methods are safe for concurrent use. Time is read through an
// injectable clock so lease expiry is testable and the failover
// experiment stays deterministic.
type Follower struct {
	mu    sync.Mutex
	st    *Store
	state *State
	// epoch is the highest leadership term seen; messages below it are
	// rejected with ErrStaleEpoch.
	epoch uint64
	// applied is the last record sequence durably applied — the ack the
	// primary uses to measure lag and resume after a follower restart.
	applied uint64
	// primarySeq is the primary's last reported WAL sequence.
	primarySeq uint64
	holder     string
	leaseTTL   time.Duration
	lastBeat   time.Time // zero: no heartbeat seen yet
	leaseEnd   time.Time // zero: lease tracking not started
	promoted   bool
	released   bool
	// local compaction cadence, independent of the primary's.
	snapshotEvery int
	sinceSnap     int
	now           func() time.Time
}

// OpenFollower opens (or creates) a follower state directory, recovering
// whatever snapshot and WAL tail a previous run left, positioned to
// resume from its last applied sequence.
func OpenFollower(dir string) (*Follower, error) {
	st, state, err := Open(dir)
	if err != nil {
		return nil, err
	}
	return &Follower{
		st:            st,
		state:         state,
		epoch:         state.Epoch,
		applied:       st.Seq(),
		snapshotEvery: DefaultSnapshotEvery,
		now:           time.Now,
	}, nil
}

// SetClock overrides the follower's time source (tests, deterministic
// experiments).
func (f *Follower) SetClock(now func() time.Time) {
	f.mu.Lock()
	f.now = now
	f.mu.Unlock()
}

// SetSnapshotEvery overrides the local compaction cadence (<=0 disables).
func (f *Follower) SetSnapshotEvery(n int) {
	f.mu.Lock()
	f.snapshotEvery = n
	f.mu.Unlock()
}

// StartLease arms lease tracking before the first heartbeat: if no
// primary checks in within ttl of now, the lease counts as expired. A
// follower that never armed the lease never promotes — it would otherwise
// take over the moment it booted, before the primary ever connected.
func (f *Follower) StartLease(ttl time.Duration) {
	f.mu.Lock()
	f.leaseTTL = ttl
	f.leaseEnd = f.now().Add(ttl)
	f.mu.Unlock()
}

// checkEpochLocked fences stale senders and adopts newer terms. Once
// this follower has promoted (or handed its store off), it IS the leader
// at f.epoch, so any sender at or below that term is a deposed primary
// and must hear "stale epoch" — the signal that makes it fence itself.
// The <= matters: a dead primary that reboots recovers its old term N
// from its own journal and mints N+1 with BecomeLeader, colliding
// exactly with the term the promoted follower took over at; fencing
// only < would let that doppelgänger lead forever. Traffic from a
// genuinely newer term reaches a promoted follower as ErrReleased: it
// cannot apply it, but the sender is not stale.
func (f *Follower) checkEpochLocked(epoch uint64) error {
	if f.promoted || f.released {
		if epoch <= f.epoch {
			return ErrStaleEpoch
		}
		return ErrReleased
	}
	if epoch < f.epoch {
		return ErrStaleEpoch
	}
	f.epoch = epoch
	return nil
}

// renewLocked treats any accepted leader traffic as proof of life.
func (f *Follower) renewLocked() {
	if f.leaseTTL > 0 {
		f.leaseEnd = f.now().Add(f.leaseTTL)
	}
}

// InstallSnapshot verifies and persists a snapshot from the primary,
// replacing the follower's state wholesale — the attach-time bootstrap
// and the resync path after a shipping gap.
func (f *Follower) InstallSnapshot(epoch uint64, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkEpochLocked(epoch); err != nil {
		return err
	}
	st, err := f.st.InstallSnapshot(data)
	if err != nil {
		return err
	}
	f.state = st
	f.applied = f.st.Seq()
	if st.Epoch > f.epoch {
		f.epoch = st.Epoch
	}
	f.sinceSnap = 0
	f.renewLocked()
	return nil
}

// AppendBatch applies one shipped record batch: each record is CRC
// verified, written verbatim to the follower's WAL, and folded into the
// warm state. Records at or below the applied sequence are duplicates
// from a re-send and are skipped; a gap returns ErrSeqGap so the primary
// falls back to a snapshot. Returns the new applied sequence — the ack.
func (f *Follower) AppendBatch(epoch uint64, recs []Record) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkEpochLocked(epoch); err != nil {
		return f.applied, err
	}
	for _, rec := range recs {
		if rec.Seq <= f.applied {
			continue
		}
		if err := f.st.AppendRecord(rec); err != nil {
			return f.applied, err
		}
		if err := f.state.apply(rec); err != nil {
			return f.applied, err
		}
		f.applied = rec.Seq
		f.sinceSnap++
	}
	f.renewLocked()
	if f.snapshotEvery > 0 && f.sinceSnap >= f.snapshotEvery {
		f.state.Compact()
		if err := f.st.Snapshot(f.state); err != nil {
			return f.applied, err
		}
		f.sinceSnap = 0
	}
	return f.applied, nil
}

// Heartbeat records a lease renewal from the primary: holder, ttl, and
// the primary's WAL sequence (for lag accounting).
func (f *Follower) Heartbeat(epoch uint64, holder string, ttl time.Duration, primarySeq uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkEpochLocked(epoch); err != nil {
		return err
	}
	f.holder = holder
	if ttl > 0 {
		f.leaseTTL = ttl
	}
	if primarySeq > f.primarySeq {
		f.primarySeq = primarySeq
	}
	f.lastBeat = f.now()
	f.renewLocked()
	return nil
}

// LeaseExpired reports whether the primary's lease has lapsed. Always
// false until StartLease or a first heartbeat arms the lease.
func (f *Follower) LeaseExpired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.released && !f.promoted && !f.leaseEnd.IsZero() && f.now().After(f.leaseEnd)
}

// Promote durably takes over leadership: the follower appends a KindEpoch
// record at epoch+1 to its own WAL, fencing every message the old primary
// may still send (they carry an epoch at or below it and are now stale).
// The caller re-admits the returned state's live tasks exactly as boot
// recovery does and then calls Handoff to confirm the transfer. A lease
// renewed since the caller observed expiry aborts with ErrLeaseLive —
// the epoch bump and the renewal serialize on f.mu, so either the
// primary's heartbeat lands first and promotion backs off, or promotion
// commits first and the heartbeat is fenced; two live leaders can't
// both come out of this window.
func (f *Follower) Promote(holder string) (*State, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.released {
		return nil, 0, ErrReleased
	}
	if f.promoted {
		return f.state, f.epoch, nil
	}
	if f.leaseTTL > 0 && !f.leaseEnd.IsZero() && !f.now().After(f.leaseEnd) {
		return nil, 0, ErrLeaseLive
	}
	epoch := f.epoch + 1
	rec, err := f.st.AppendFull(KindEpoch, EpochRecord{Epoch: epoch, Holder: holder, TTLNanos: f.leaseTTL.Nanoseconds()})
	if err != nil {
		return nil, 0, err
	}
	if err := f.state.apply(rec); err != nil {
		return nil, 0, err
	}
	f.applied = rec.Seq
	f.epoch = epoch
	f.holder = holder
	f.promoted = true
	return f.state, epoch, nil
}

// Store exposes the follower's underlying store so a promoted daemon
// can attach its journal before confirming the transfer with Handoff:
// Promote has already fenced all replication traffic, so the store is
// quiescent, and deferring Handoff keeps a failed promotion attempt
// from stranding the store in released limbo.
func (f *Follower) Store() *Store {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// Handoff releases the store and state to the promoted daemon: the
// follower stops accepting replication traffic (fenced as stale at or
// below its term, ErrReleased above it) so it can never race the
// journal that takes over as single writer.
func (f *Follower) Handoff() (*Store, *State) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.released = true
	return f.st, f.state
}

// Close closes the underlying store (no-op after Handoff released it to
// a journal).
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.released {
		return nil
	}
	f.released = true
	return f.st.Close()
}

// Epoch reports the highest leadership term seen.
func (f *Follower) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Applied reports the last durably applied record sequence — the ack.
func (f *Follower) Applied() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Lag reports how many records the follower trails the primary by, per
// the last heartbeat's sequence.
func (f *Follower) Lag() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.primarySeq <= f.applied {
		return 0
	}
	return f.primarySeq - f.applied
}

// LeaseAge reports the time since the last heartbeat, or -1 if none has
// arrived yet.
func (f *Follower) LeaseAge() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.lastBeat.IsZero() {
		return -1
	}
	return f.now().Sub(f.lastBeat)
}

// Holder reports the leader name from the last heartbeat.
func (f *Follower) Holder() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.holder
}

// Promoted reports whether this follower has taken over leadership.
func (f *Follower) Promoted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}

// State returns the follower's warm replayed state. Callers must treat it
// as read-only while replication is live.
func (f *Follower) State() *State {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state
}
