package store

import (
	"context"
	"sync"

	"surfos/internal/telemetry"
)

// DefaultSnapshotEvery is how many WAL records accumulate before the
// journal takes an automatic snapshot and compacts the log.
const DefaultSnapshotEvery = 256

// Journal turns the control plane's task-event stream into durable WAL
// records and keeps the replayed State mirror current, so a snapshot can
// be cut at any moment. It is the single writer on its Store; all methods
// are safe for concurrent use.
//
// The journal consumes the same drop-on-full telemetry bus every other
// subscriber uses. Durability therefore depends on the subscription
// buffer outrunning reconcile bursts — subscribe with JournalBuffer,
// sized far beyond any burst the reconcile loop can produce. A drop is
// detectable (telemetry.EventBus.Dropped) and surfaced in the daemon's
// shutdown log.
type Journal struct {
	mu    sync.Mutex
	st    *Store
	state *State
	// snapshotEvery compacts after this many records (<=0: never).
	snapshotEvery int
	sinceSnap     int
	err           error // first write error; journaling stops after it
	// logf reports the first write error from Run (nil: discard). Set it
	// before starting Run.
	logf func(format string, args ...any)
}

// JournalBuffer is the recommended bus subscription buffer for a journal
// consumer: large enough to absorb a full reconcile burst over every task
// without dropping, small enough to be free.
const JournalBuffer = 4096

// NewJournal wraps an open store and its recovered state.
func NewJournal(st *Store, state *State) *Journal {
	if state == nil {
		state = NewState()
	}
	return &Journal{st: st, state: state, snapshotEvery: DefaultSnapshotEvery}
}

// SetSnapshotEvery overrides the automatic compaction cadence (<=0
// disables automatic snapshots).
func (j *Journal) SetSnapshotEvery(n int) {
	j.mu.Lock()
	j.snapshotEvery = n
	j.mu.Unlock()
}

// SetLogf installs the logger Run uses to announce the first write error
// (default: discard). Set it before starting Run.
func (j *Journal) SetLogf(f func(format string, args ...any)) {
	j.mu.Lock()
	j.logf = f
	j.mu.Unlock()
}

// Err returns the first write error, if journaling has failed.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Seq reports the store's last appended record sequence. The journal is
// the store's single writer, so reading under its lock is exact.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Seq()
}

// SinceSnapshot reports how many records have been appended since the
// last snapshot — the compaction backlog.
func (j *Journal) SinceSnapshot() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinceSnap
}

// Consume journals one task/device lifecycle event. Events that carry no
// durable information (replanned markers, events for tasks whose specs
// were never journaled) are skipped.
func (j *Journal) Consume(ev telemetry.TaskEvent) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	switch ev.State {
	case telemetry.DeviceDegraded, telemetry.DeviceDead, telemetry.DeviceRecovered:
		rec := DeviceRecord{DeviceID: ev.DeviceID, State: ev.State, Err: ev.Err}
		if err := j.append(KindDevice, rec); err != nil {
			return err
		}
		j.state.Devices[rec.DeviceID] = &rec
	case telemetry.Replanned:
		// Derived: the re-plan is recomputed at recovery anyway.
	case telemetry.TaskSubmitted:
		if ev.TaskID <= 0 || len(ev.Spec) == 0 {
			return nil // unpersistable service (no goal codec): skip
		}
		if err := j.append(KindTaskSpec, TaskSpecRecord{TaskID: ev.TaskID, Spec: ev.Spec}); err != nil {
			return err
		}
		j.state.Tasks[ev.TaskID] = &TaskRecord{ID: ev.TaskID, Spec: ev.Spec, State: ev.State}
		if ev.TaskID > j.state.MaxTaskID {
			j.state.MaxTaskID = ev.TaskID
		}
	default:
		if ev.TaskID <= 0 {
			return nil
		}
		t, ok := j.state.Tasks[ev.TaskID]
		if !ok {
			return nil // spec never journaled; a transition alone cannot restore it
		}
		if err := j.append(KindTaskState, TaskStateRecord{
			TaskID: ev.TaskID, State: ev.State, UnixNanos: ev.Time.UnixNano(),
		}); err != nil {
			return err
		}
		t.State = ev.State
	}
	if j.snapshotEvery > 0 && j.sinceSnap >= j.snapshotEvery {
		return j.snapshotLocked()
	}
	return nil
}

// append writes one record, tracking the compaction counter and sticky
// error. Caller holds j.mu.
func (j *Journal) append(kind string, data any) error {
	if _, err := j.st.Append(kind, data); err != nil {
		j.err = err
		return err
	}
	j.sinceSnap++
	return nil
}

// Run consumes a bus subscription until ctx is cancelled or the channel
// closes. Run it in its own goroutine; errors are sticky and visible via
// Err, and the first one is announced through SetLogf's logger so the
// operator learns of durability loss while the daemon is still running,
// not at the final shutdown snapshot.
func (j *Journal) Run(ctx context.Context, ch <-chan telemetry.TaskEvent) {
	reported := false
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := j.Consume(ev); err != nil && !reported {
				reported = true
				j.mu.Lock()
				logf := j.logf
				j.mu.Unlock()
				if logf != nil {
					logf("state: journaling failed, new tasks are NOT durable: %v", err)
				}
			}
		}
	}
}

// Snapshot compacts ended tasks out of the state and atomically persists
// it, resetting the WAL.
func (j *Journal) Snapshot() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *Journal) snapshotLocked() error {
	j.state.Compact()
	if err := j.st.Snapshot(j.state); err != nil {
		j.err = err
		return err
	}
	j.sinceSnap = 0
	return nil
}

// Sync flushes and fsyncs the underlying WAL.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Sync()
}

// Close flushes, fsyncs and closes the store. The journal is unusable
// afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Close()
}
