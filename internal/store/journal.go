package store

import (
	"context"
	"sync"
	"time"

	"surfos/internal/telemetry"
)

// DefaultSnapshotEvery is how many WAL records accumulate before the
// journal takes an automatic snapshot and compacts the log.
const DefaultSnapshotEvery = 256

// Journal turns the control plane's task-event stream into durable WAL
// records and keeps the replayed State mirror current, so a snapshot can
// be cut at any moment. It is the single writer on its Store; all methods
// are safe for concurrent use.
//
// The journal consumes the same drop-on-full telemetry bus every other
// subscriber uses. Durability therefore depends on the subscription
// buffer outrunning reconcile bursts — subscribe with JournalBuffer,
// sized far beyond any burst the reconcile loop can produce. A drop is
// detectable (telemetry.EventBus.Dropped) and surfaced in the daemon's
// shutdown log.
type Journal struct {
	mu    sync.Mutex
	st    *Store
	state *State
	// snapshotEvery compacts after this many records (<=0: never).
	snapshotEvery int
	sinceSnap     int
	err           error // first write error; journaling stops after it
	// logf reports the first write error from Run (nil: discard). Set it
	// before starting Run.
	logf func(format string, args ...any)
	// bus, when set, receives a one-shot JournalFailed event on the first
	// write error so a dying disk is visible on /metrics and watch
	// streams, not only in the health command.
	bus      *telemetry.EventBus
	busFired bool
	// obs are replication observers: each appended record is handed to
	// every observer under j.mu, in append order, before Consume returns.
	obs     map[int]func(Record)
	obsNext int
}

// JournalBuffer is the recommended bus subscription buffer for a journal
// consumer: large enough to absorb a full reconcile burst over every task
// without dropping, small enough to be free.
const JournalBuffer = 4096

// NewJournal wraps an open store and its recovered state.
func NewJournal(st *Store, state *State) *Journal {
	if state == nil {
		state = NewState()
	}
	return &Journal{st: st, state: state, snapshotEvery: DefaultSnapshotEvery}
}

// SetSnapshotEvery overrides the automatic compaction cadence (<=0
// disables automatic snapshots).
func (j *Journal) SetSnapshotEvery(n int) {
	j.mu.Lock()
	j.snapshotEvery = n
	j.mu.Unlock()
}

// SetLogf installs the logger Run uses to announce the first write error
// (default: discard). Set it before starting Run.
func (j *Journal) SetLogf(f func(format string, args ...any)) {
	j.mu.Lock()
	j.logf = f
	j.mu.Unlock()
}

// SetEventBus installs the telemetry bus on which the journal announces
// its first write error as a JournalFailed event. Set it before starting
// Run. Publishing is non-blocking (drop-on-full), so firing from the
// journal's own consume path cannot deadlock its subscription.
func (j *Journal) SetEventBus(b *telemetry.EventBus) {
	j.mu.Lock()
	j.bus = b
	j.mu.Unlock()
}

// Err returns the first write error, if journaling has failed.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Seq reports the store's last appended record sequence. The journal is
// the store's single writer, so reading under its lock is exact.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Seq()
}

// SinceSnapshot reports how many records have been appended since the
// last snapshot — the compaction backlog.
func (j *Journal) SinceSnapshot() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinceSnap
}

// Consume journals one task/device lifecycle event. Events that carry no
// durable information (replanned markers, events for tasks whose specs
// were never journaled) are skipped.
func (j *Journal) Consume(ev telemetry.TaskEvent) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	switch ev.State {
	case telemetry.DeviceDegraded, telemetry.DeviceDead, telemetry.DeviceRecovered:
		rec := DeviceRecord{DeviceID: ev.DeviceID, State: ev.State, Err: ev.Err}
		if err := j.append(KindDevice, rec); err != nil {
			return err
		}
		j.state.Devices[rec.DeviceID] = &rec
	case telemetry.Replanned:
		// Derived: the re-plan is recomputed at recovery anyway.
	case telemetry.TaskSubmitted:
		if ev.TaskID <= 0 || len(ev.Spec) == 0 {
			return nil // unpersistable service (no goal codec): skip
		}
		if err := j.append(KindTaskSpec, TaskSpecRecord{TaskID: ev.TaskID, Spec: ev.Spec}); err != nil {
			return err
		}
		j.state.Tasks[ev.TaskID] = &TaskRecord{ID: ev.TaskID, Spec: ev.Spec, State: ev.State}
		if ev.TaskID > j.state.MaxTaskID {
			j.state.MaxTaskID = ev.TaskID
		}
	default:
		if ev.TaskID <= 0 {
			return nil
		}
		t, ok := j.state.Tasks[ev.TaskID]
		if !ok {
			return nil // spec never journaled; a transition alone cannot restore it
		}
		if err := j.append(KindTaskState, TaskStateRecord{
			TaskID: ev.TaskID, State: ev.State, UnixNanos: ev.Time.UnixNano(),
		}); err != nil {
			return err
		}
		t.State = ev.State
	}
	if j.snapshotEvery > 0 && j.sinceSnap >= j.snapshotEvery {
		return j.snapshotLocked()
	}
	return nil
}

// append writes one record, tracking the compaction counter and sticky
// error, and hands the complete record to every replication observer.
// Caller holds j.mu.
func (j *Journal) append(kind string, data any) error {
	rec, err := j.st.AppendFull(kind, data)
	if err != nil {
		j.failLocked(err)
		return err
	}
	j.sinceSnap++
	for _, obs := range j.obs {
		obs(rec)
	}
	return nil
}

// failLocked records the sticky error and fires the one-shot
// JournalFailed bus event. Caller holds j.mu.
func (j *Journal) failLocked(err error) {
	if j.err == nil {
		j.err = err
	}
	if j.bus != nil && !j.busFired {
		j.busFired = true
		j.bus.Publish(telemetry.TaskEvent{
			Time:  time.Now(),
			State: telemetry.JournalFailed,
			Err:   err.Error(),
		})
	}
}

// Run consumes a bus subscription until ctx is cancelled or the channel
// closes. Run it in its own goroutine; errors are sticky and visible via
// Err, and the first one is announced through SetLogf's logger so the
// operator learns of durability loss while the daemon is still running,
// not at the final shutdown snapshot.
func (j *Journal) Run(ctx context.Context, ch <-chan telemetry.TaskEvent) {
	reported := false
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := j.Consume(ev); err != nil && !reported {
				reported = true
				j.mu.Lock()
				logf := j.logf
				j.mu.Unlock()
				if logf != nil {
					logf("state: journaling failed, new tasks are NOT durable: %v", err)
				}
			}
		}
	}
}

// Snapshot compacts ended tasks out of the state and atomically persists
// it, resetting the WAL.
func (j *Journal) Snapshot() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *Journal) snapshotLocked() error {
	j.state.Compact()
	if err := j.st.Snapshot(j.state); err != nil {
		j.failLocked(err)
		return err
	}
	j.sinceSnap = 0
	return nil
}

// BecomeLeader durably starts a new leadership term: it journals a
// KindEpoch record at the recovered epoch + 1 and returns the new epoch.
// Every replicated append carries this epoch; a standby that later
// promotes bumps it again, fencing this journal's writes.
func (j *Journal) BecomeLeader(holder string, ttl time.Duration) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return 0, j.err
	}
	epoch := j.state.Epoch + 1
	rec := EpochRecord{Epoch: epoch, Holder: holder, TTLNanos: ttl.Nanoseconds()}
	if err := j.append(KindEpoch, rec); err != nil {
		return 0, err
	}
	j.state.Epoch = epoch
	j.state.Leader = holder
	return epoch, nil
}

// Epoch reports the journal's current leadership term (0: never led).
func (j *Journal) Epoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Epoch
}

// AttachReplica atomically captures a replication starting point and
// registers an observer for every subsequent record: because the
// journal's State mirror is always current, the snapshot taken under the
// lock covers exactly the records before the first one the observer sees
// — no tail transfer, no gap, no duplicate. The observer runs under the
// journal lock on the consume path, so it must not block (hand off to a
// buffered channel). The returned detach func unregisters it.
func (j *Journal) AttachReplica(obs func(Record)) (epoch, seq uint64, snapshot []byte, detach func(), err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap, err := EncodeSnapshot(j.st.Seq(), j.state)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	if j.obs == nil {
		j.obs = map[int]func(Record){}
	}
	id := j.obsNext
	j.obsNext++
	j.obs[id] = obs
	detach = func() {
		j.mu.Lock()
		delete(j.obs, id)
		j.mu.Unlock()
	}
	return j.state.Epoch, j.st.Seq(), snap, detach, nil
}

// WALSize reports the bytes of acknowledged WAL records on disk.
func (j *Journal) WALSize() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.WALSize()
}

// SnapshotAge reports the time since the last snapshot was persisted, or
// -1 if no snapshot exists yet.
func (j *Journal) SnapshotAge() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	t := j.st.SnapshotTime()
	if t.IsZero() {
		return -1
	}
	return time.Since(t)
}

// Sync flushes and fsyncs the underlying WAL.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Sync()
}

// Close flushes, fsyncs and closes the store. The journal is unusable
// afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Close()
}
