package store

import "surfos/internal/metrics"

// RegisterMetrics exposes the journal's durability state on a metrics
// registry: the last appended WAL sequence, the compaction backlog since
// the previous snapshot, and whether journaling has failed. Journal lag —
// events published but not yet consumed — is the journal subscriber's bus
// backlog and is exported by the bus metrics, labelled with the journal's
// subscription name.
func (j *Journal) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("surfos_journal_seq", "Last appended WAL record sequence.",
		func() float64 { return float64(j.Seq()) })
	r.GaugeFunc("surfos_journal_since_snapshot", "WAL records appended since the last snapshot.",
		func() float64 { return float64(j.SinceSnapshot()) })
	r.GaugeFunc("surfos_journal_failed", "1 when journaling has stopped on a write error.",
		func() float64 {
			if j.Err() != nil {
				return 1
			}
			return 0
		})
	r.GaugeFunc("surfos_wal_size_bytes", "Bytes of acknowledged WAL records on disk since the last compaction.",
		func() float64 { return float64(j.WALSize()) })
	r.GaugeFunc("surfos_snapshot_age_seconds", "Seconds since the last snapshot was persisted (-1: none yet).",
		func() float64 {
			age := j.SnapshotAge()
			if age < 0 {
				return -1
			}
			return age.Seconds()
		})
	r.GaugeFunc("surfos_journal_epoch", "Leadership term recorded in the journal (0: never replicated).",
		func() float64 { return float64(j.Epoch()) })
}
