package store

import "surfos/internal/metrics"

// RegisterJournalMetrics exposes the journal's durability state through
// an accessor, so a daemon whose journal appears only at runtime — a
// standby installing one when it promotes — still exports every family
// from boot: the last appended WAL sequence, the compaction backlog
// since the previous snapshot, whether journaling has failed, WAL size,
// snapshot age, and the journaled leadership epoch. While get returns
// nil the gauges read their zero values (-1 for snapshot age); they
// start tracking the journal the moment one is installed. Journal lag —
// events published but not yet consumed — is the journal subscriber's
// bus backlog and is exported by the bus metrics, labelled with the
// journal's subscription name.
func RegisterJournalMetrics(r *metrics.Registry, get func() *Journal) {
	r.CounterFunc("surfos_journal_seq", "Last appended WAL record sequence.",
		func() float64 {
			if j := get(); j != nil {
				return float64(j.Seq())
			}
			return 0
		})
	r.GaugeFunc("surfos_journal_since_snapshot", "WAL records appended since the last snapshot.",
		func() float64 {
			if j := get(); j != nil {
				return float64(j.SinceSnapshot())
			}
			return 0
		})
	r.GaugeFunc("surfos_journal_failed", "1 when journaling has stopped on a write error.",
		func() float64 {
			if j := get(); j != nil && j.Err() != nil {
				return 1
			}
			return 0
		})
	r.GaugeFunc("surfos_wal_size_bytes", "Bytes of acknowledged WAL records on disk since the last compaction.",
		func() float64 {
			if j := get(); j != nil {
				return float64(j.WALSize())
			}
			return 0
		})
	r.GaugeFunc("surfos_snapshot_age_seconds", "Seconds since the last snapshot was persisted (-1: none yet).",
		func() float64 {
			j := get()
			if j == nil {
				return -1
			}
			age := j.SnapshotAge()
			if age < 0 {
				return -1
			}
			return age.Seconds()
		})
	r.GaugeFunc("surfos_journal_epoch", "Leadership term recorded in the journal (0: never replicated).",
		func() float64 {
			if j := get(); j != nil {
				return float64(j.Epoch())
			}
			return 0
		})
}

// RegisterMetrics exposes one fixed journal's durability state (see
// RegisterJournalMetrics). Daemons whose journal can be swapped in at
// runtime should register through the accessor form instead.
func (j *Journal) RegisterMetrics(r *metrics.Registry) {
	RegisterJournalMetrics(r, func() *Journal { return j })
}
