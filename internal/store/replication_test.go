package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"surfos/internal/telemetry"
)

// replHistory is the crash test's scripted control-plane history, reused
// so the replicated stream is exercised against the same event shapes.
func replHistory() []telemetry.TaskEvent {
	return []telemetry.TaskEvent{
		event(1, telemetry.TaskSubmitted, specJSON(1)),
		event(1, telemetry.TaskScheduled, nil),
		event(1, telemetry.TaskRunning, nil),
		event(2, telemetry.TaskSubmitted, specJSON(2)),
		{State: telemetry.DeviceDegraded, DeviceID: "east", Err: "3 stuck elements"},
		event(2, telemetry.TaskRunning, nil),
		event(3, telemetry.TaskSubmitted, specJSON(3)),
		event(3, telemetry.TaskFailed, nil),
		event(1, telemetry.TaskIdle, nil),
		{State: telemetry.DeviceDead, DeviceID: "east", Err: "heartbeat lost"},
		event(4, telemetry.TaskSubmitted, specJSON(4)),
		event(4, telemetry.TaskRunning, nil),
		event(2, telemetry.TaskDone, nil),
		event(1, telemetry.TaskResumed, nil),
		event(1, telemetry.TaskRunning, nil),
		{State: telemetry.DeviceRecovered, DeviceID: "east"},
		event(4, telemetry.TaskDone, nil),
	}
}

// masterWAL journals the scripted history (under a leadership epoch, as
// a replicating primary would) and returns the WAL bytes and decoded
// records.
func masterWAL(t *testing.T) ([]byte, []Record) {
	t.Helper()
	master := t.TempDir()
	s, st, err := Open(master)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(s, st)
	j.SetSnapshotEvery(0)
	if _, err := j.BecomeLeader("primary", 3*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, ev := range replHistory() {
		if err := j.Consume(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(master, walName))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(walBytes, []byte("\n"))
	if len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	recs := make([]Record, len(lines))
	for i, ln := range lines {
		if err := json.Unmarshal(bytes.TrimSuffix(ln, []byte("\n")), &recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return walBytes, recs
}

// TestFollowerCrashReplayAtEveryBoundary is the crash matrix run against
// the replicated stream: a follower's WAL is truncated at every record
// boundary (a follower crash after that many replicated records reached
// disk, plus a torn half-record variant for a crash mid-replay), the
// follower reopens, and the primary resumes shipping its full stream.
// Records at or below the follower's recovered sequence must be skipped
// idempotently, the rest applied — and because records replicate
// verbatim, the recovered follower's WAL must end up byte-identical to
// the primary's.
func TestFollowerCrashReplayAtEveryBoundary(t *testing.T) {
	walBytes, recs := masterWAL(t)
	lines := bytes.SplitAfter(walBytes, []byte("\n"))
	if len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	// The full-history fold is what every recovery must converge to.
	want := NewState()
	for _, r := range recs {
		if err := want.Apply(r); err != nil {
			t.Fatal(err)
		}
	}
	wantLive := want.Live()

	for boundary := 0; boundary <= len(lines); boundary++ {
		for _, tear := range []string{"", "torn"} {
			name := fmt.Sprintf("boundary=%d", boundary)
			if tear != "" {
				name += "+" + tear
			}
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				prefix := bytes.Join(lines[:boundary], nil)
				if tear == "torn" {
					next := []byte(`{"seq":99999,"kind":"task_state","da`)
					if boundary < len(lines) {
						next = bytes.TrimSuffix(lines[boundary][:len(lines[boundary])/2], []byte("\n"))
					}
					prefix = append(append([]byte{}, prefix...), next...)
				}
				if err := os.WriteFile(filepath.Join(dir, walName), prefix, 0o644); err != nil {
					t.Fatal(err)
				}

				fol, err := OpenFollower(dir)
				if err != nil {
					t.Fatalf("follower recovery at boundary %d (%s): %v", boundary, tear, err)
				}
				defer fol.Close()
				fol.SetSnapshotEvery(0)
				if got, want := fol.Applied(), uint64(boundary); got != want {
					t.Errorf("recovered applied = %d, want %d", got, want)
				}

				// The primary resumes its stream from the top; everything the
				// follower already has must be skipped, the rest applied.
				applied, err := fol.AppendBatch(1, recs)
				if err != nil {
					t.Fatalf("resume replay: %v", err)
				}
				if want := uint64(len(recs)); applied != want {
					t.Errorf("applied = %d, want %d", applied, want)
				}

				gotLive := fol.State().Live()
				if len(gotLive) != len(wantLive) {
					t.Fatalf("replayed %d live task(s), want %d", len(gotLive), len(wantLive))
				}
				for i := range wantLive {
					if gotLive[i].ID != wantLive[i].ID || gotLive[i].State != wantLive[i].State {
						t.Errorf("live[%d] = %d/%s, want %d/%s",
							i, gotLive[i].ID, gotLive[i].State, wantLive[i].ID, wantLive[i].State)
					}
				}
				if got := fol.Epoch(); got != 1 {
					t.Errorf("follower epoch = %d, want 1 (adopted from the replicated epoch record)", got)
				}

				// Verbatim replication: the follower's recovered-and-resumed
				// WAL is byte-identical to the primary's.
				folBytes, err := os.ReadFile(filepath.Join(dir, walName))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(folBytes, walBytes) {
					t.Errorf("follower WAL diverged from primary's after boundary %d (%s):\nfollower %d byte(s), primary %d byte(s)",
						boundary, tear, len(folBytes), len(walBytes))
				}
			})
		}
	}
}

// TestStaleEpochFencingRejectsResumedPrimary pins the fencing invariant:
// after a follower promotes past a primary's epoch, every message the
// resumed stale primary sends — appends and heartbeats — is rejected
// with ErrStaleEpoch, and after handoff the released follower refuses
// everything.
func TestStaleEpochFencingRejectsResumedPrimary(t *testing.T) {
	_, recs := masterWAL(t)
	fol, err := OpenFollower(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fol.SetSnapshotEvery(0)
	if _, err := fol.AppendBatch(1, recs); err != nil {
		t.Fatal(err)
	}

	// The primary pauses; the follower promotes, bumping the epoch durably.
	_, epoch, err := fol.Promote("standby")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	if !fol.Promoted() {
		t.Error("follower does not report promoted")
	}

	// The stale primary resumes and tries to keep shipping at epoch 1.
	next := Record{Seq: fol.Applied() + 1, Kind: KindDevice, Data: []byte(`{"device_id":"x","state":"device_recovered"}`)}
	next.CRC = checksum(next.Seq, next.Kind, next.Data)
	if _, err := fol.AppendBatch(1, []Record{next}); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("stale append err = %v, want ErrStaleEpoch", err)
	}
	if err := fol.Heartbeat(1, "primary", time.Second, 99); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("stale heartbeat err = %v, want ErrStaleEpoch", err)
	}
	if err := fol.InstallSnapshot(1, nil); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("stale snapshot err = %v, want ErrStaleEpoch", err)
	}

	// Handoff releases the follower: traffic at or below its own term is
	// still a deposed primary and must hear the fencing signal; only a
	// genuinely newer term gets ErrReleased (the follower cannot apply it,
	// but the sender is not stale).
	st, state := fol.Handoff()
	defer st.Close()
	if state.Epoch != 2 {
		t.Errorf("handed-off state epoch = %d, want 2", state.Epoch)
	}
	if _, err := fol.AppendBatch(epoch, []Record{next}); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("post-handoff equal-epoch append err = %v, want ErrStaleEpoch", err)
	}
	if _, err := fol.AppendBatch(epoch+1, []Record{next}); !errors.Is(err, ErrReleased) {
		t.Errorf("post-handoff newer-epoch append err = %v, want ErrReleased", err)
	}

	// The promotion epoch record is durable: a reopen of the directory
	// recovers epoch 2, so even a follower restart cannot regress the term.
	dir := st.Dir()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Epoch != 2 {
		t.Errorf("reopened epoch = %d, want 2", reopened.Epoch)
	}
}

// TestStaleEpochTieFencesRebootedPrimary pins the epoch-tie corner of the
// fence: a primary that dies at epoch N and reboots recovers N from its
// own journal and mints N+1 with BecomeLeader — the very term the
// promoted follower took over at. Both daemons now claim epoch N+1, and
// the epoch alone cannot arbitrate; the promoted side must still fence
// the doppelgänger (epoch <= its own term is stale once it leads), both
// before and after Handoff, or the pair runs two leaders forever.
func TestStaleEpochTieFencesRebootedPrimary(t *testing.T) {
	// Primary at epoch 1 journals the scripted history in its own dir.
	pdir := t.TempDir()
	s, st0, err := Open(pdir)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(s, st0)
	j.SetSnapshotEvery(0)
	if _, err := j.BecomeLeader("primary", 3*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, ev := range replHistory() {
		if err := j.Consume(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(pdir, walName))
	if err != nil {
		t.Fatal(err)
	}

	// The follower has replicated everything; the primary dies; the
	// follower promotes to epoch 2.
	fdir := t.TempDir()
	if err := os.WriteFile(filepath.Join(fdir, walName), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	fol, err := OpenFollower(fdir)
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	fol.SetSnapshotEvery(0)
	_, epoch, err := fol.Promote("standby")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}

	// The dead primary reboots: recovery reads epoch 1 from its journal,
	// BecomeLeader mints 2 — a tie with the promoted follower's term.
	s2, st2, err := Open(pdir)
	if err != nil {
		t.Fatal(err)
	}
	j2 := NewJournal(s2, st2)
	j2.SetSnapshotEvery(0)
	rebootEpoch, err := j2.BecomeLeader("primary", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rebootEpoch != epoch {
		t.Fatalf("reboot epoch = %d, want the tie at %d", rebootEpoch, epoch)
	}

	// Everything the rebooted primary ships at the tied epoch is fenced.
	next := Record{Seq: fol.Applied() + 1, Kind: KindDevice, Data: []byte(`{"device_id":"x","state":"device_recovered"}`)}
	next.CRC = checksum(next.Seq, next.Kind, next.Data)
	if _, err := fol.AppendBatch(rebootEpoch, []Record{next}); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("tied-epoch append err = %v, want ErrStaleEpoch", err)
	}
	if err := fol.Heartbeat(rebootEpoch, "primary", time.Second, 99); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("tied-epoch heartbeat err = %v, want ErrStaleEpoch", err)
	}
	if err := fol.InstallSnapshot(rebootEpoch, nil); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("tied-epoch snapshot err = %v, want ErrStaleEpoch", err)
	}

	// The fence survives the handoff to the promoted journal.
	hst, _ := fol.Handoff()
	defer hst.Close()
	if _, err := fol.AppendBatch(rebootEpoch, []Record{next}); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("post-handoff tied-epoch append err = %v, want ErrStaleEpoch", err)
	}
}

// TestPromoteAbortsWhenLeaseRenewed pins the promotion race: a heartbeat
// that lands between the lease-expiry observation and the epoch bump
// aborts the takeover with ErrLeaseLive — the epoch bump and the renewal
// serialize on the follower's lock, so two live leaders cannot both come
// out of that window.
func TestPromoteAbortsWhenLeaseRenewed(t *testing.T) {
	fol, err := OpenFollower(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	now := time.Unix(1_700_000_000, 0)
	fol.SetClock(func() time.Time { return now })

	ttl := 3 * time.Second
	fol.StartLease(ttl)
	now = now.Add(ttl + time.Second)
	if !fol.LeaseExpired() {
		t.Fatal("lease did not expire")
	}

	// The primary's heartbeat races in just before the epoch bump.
	if err := fol.Heartbeat(1, "primary", ttl, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fol.Promote("standby"); !errors.Is(err, ErrLeaseLive) {
		t.Fatalf("promote after renewal err = %v, want ErrLeaseLive", err)
	}
	if fol.Promoted() {
		t.Fatal("aborted promotion still marked the follower promoted")
	}

	// Silence past the TTL re-expires the lease; promotion then commits.
	now = now.Add(ttl + time.Second)
	if !fol.LeaseExpired() {
		t.Fatal("lease did not re-expire")
	}
	if _, epoch, err := fol.Promote("standby"); err != nil {
		t.Fatal(err)
	} else if epoch != 2 {
		t.Errorf("promoted epoch = %d, want 2", epoch)
	}
}

// TestReplicationSnapshotAttachAndGap covers the attach bootstrap and the
// stream-integrity errors: a snapshot captured under the journal lock
// installs wholesale and positions the follower at the primary's
// sequence; a shipped record that skips ahead is rejected as a sequence
// gap; a corrupted record is rejected by its CRC before touching disk.
func TestReplicationSnapshotAttachAndGap(t *testing.T) {
	pdir := t.TempDir()
	s, st, err := Open(pdir)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(s, st)
	j.SetSnapshotEvery(0)
	if _, err := j.BecomeLeader("primary", time.Second); err != nil {
		t.Fatal(err)
	}
	history := replHistory()
	for _, ev := range history[:8] {
		if err := j.Consume(ev); err != nil {
			t.Fatal(err)
		}
	}

	var streamed []Record
	epoch, seq, snap, detach, err := j.AttachReplica(func(rec Record) { streamed = append(streamed, rec) })
	if err != nil {
		t.Fatal(err)
	}
	defer detach()
	if epoch != 1 {
		t.Errorf("attach epoch = %d, want 1", epoch)
	}
	if seq != j.Seq() {
		t.Errorf("attach seq = %d, want %d", seq, j.Seq())
	}

	fol, err := OpenFollower(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	fol.SetSnapshotEvery(0)
	if err := fol.InstallSnapshot(epoch, snap); err != nil {
		t.Fatal(err)
	}
	if fol.Applied() != seq {
		t.Errorf("applied after snapshot = %d, want %d", fol.Applied(), seq)
	}

	// Records journaled after the attach reach the observer and replay.
	for _, ev := range history[8:] {
		if err := j.Consume(ev); err != nil {
			t.Fatal(err)
		}
	}
	if len(streamed) != len(history)-8 {
		t.Fatalf("observer saw %d record(s), want %d", len(streamed), len(history)-8)
	}
	if _, err := fol.AppendBatch(epoch, streamed); err != nil {
		t.Fatal(err)
	}
	if fol.Applied() != j.Seq() {
		t.Errorf("applied = %d, want %d", fol.Applied(), j.Seq())
	}
	if fol.Lag() != 0 {
		t.Errorf("lag = %d, want 0", fol.Lag())
	}

	// A record that skips ahead means the shipper lost data: reject it so
	// the session resyncs from a snapshot instead of silently diverging.
	gap := Record{Seq: fol.Applied() + 2, Kind: KindDevice, Data: []byte(`{}`)}
	gap.CRC = checksum(gap.Seq, gap.Kind, gap.Data)
	if _, err := fol.AppendBatch(epoch, []Record{gap}); !errors.Is(err, ErrSeqGap) {
		t.Errorf("gap append err = %v, want ErrSeqGap", err)
	}

	// A record damaged in flight fails its CRC re-check.
	bad := Record{Seq: fol.Applied() + 1, Kind: KindDevice, Data: []byte(`{}`), CRC: 0xdeadbeef}
	if _, err := fol.AppendBatch(epoch, []Record{bad}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt append err = %v, want ErrCorrupt", err)
	}
}

// TestFollowerLeaseExpiryAndPromotionIdempotence drives the lease on a
// virtual clock: traffic renews it, silence expires it, promotion is
// idempotent, and an unarmed lease never expires.
func TestFollowerLeaseExpiryAndPromotionIdempotence(t *testing.T) {
	fol, err := OpenFollower(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	now := time.Unix(1_700_000_000, 0)
	fol.SetClock(func() time.Time { return now })

	// Unarmed: silence forever, still no promotion trigger.
	now = now.Add(time.Hour)
	if fol.LeaseExpired() {
		t.Fatal("unarmed lease reported expired")
	}

	ttl := 3 * time.Second
	fol.StartLease(ttl)
	if fol.LeaseExpired() {
		t.Fatal("fresh lease reported expired")
	}
	if err := fol.Heartbeat(1, "primary", ttl, 0); err != nil {
		t.Fatal(err)
	}
	if age := fol.LeaseAge(); age != 0 {
		t.Errorf("lease age right after heartbeat = %v, want 0", age)
	}

	// Traffic within the TTL keeps renewing.
	now = now.Add(2 * time.Second)
	if fol.LeaseExpired() {
		t.Fatal("lease expired before ttl")
	}
	if err := fol.Heartbeat(1, "primary", ttl, 0); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Second)
	if fol.LeaseExpired() {
		t.Fatal("renewed lease expired early")
	}

	// Silence past the TTL expires it.
	now = now.Add(ttl)
	if !fol.LeaseExpired() {
		t.Fatal("silent lease did not expire")
	}

	_, epoch, err := fol.Promote("standby")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Errorf("promoted epoch = %d, want 2 (one past the heartbeat's term)", epoch)
	}
	// Promotion is idempotent: a second call reports the same epoch.
	_, again, err := fol.Promote("standby")
	if err != nil {
		t.Fatal(err)
	}
	if again != epoch {
		t.Errorf("re-promotion epoch = %d, want %d", again, epoch)
	}
	if fol.LeaseExpired() {
		t.Error("promoted follower still reports lease expiry")
	}
}
