package store

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Record kinds journaled by the control plane.
const (
	// KindTaskSpec carries a task's full submission spec (TaskSpecRecord).
	KindTaskSpec = "task_spec"
	// KindTaskState carries one lifecycle transition (TaskStateRecord).
	KindTaskState = "task_state"
	// KindDevice carries one device health transition (DeviceRecord).
	KindDevice = "device_health"
	// KindEpoch carries one leadership change (EpochRecord): the lease, as
	// persisted in the WAL stream. Written once per term, not per
	// heartbeat — heartbeats are protocol frames, renewals of the same
	// lease, and journaling them would bloat the WAL with derived data.
	KindEpoch = "epoch"
)

// Terminal lifecycle phases: a task whose last journaled state is one of
// these is "ended" and is not re-admitted at recovery. The strings match
// telemetry's task phase constants; store avoids the import so it stays a
// leaf package usable from any layer.
const (
	stateDone   = "done"
	stateFailed = "failed"
)

// TaskSpecRecord journals a task's submission: the ID it must be restored
// under and the orchestrator's opaque spec JSON (kind, goal, priority,
// deadline). The store never interprets Spec — only the orchestrator's
// service registry can decode goals.
type TaskSpecRecord struct {
	TaskID int             `json:"task_id"`
	Spec   json.RawMessage `json:"spec"`
}

// TaskStateRecord journals one lifecycle transition.
type TaskStateRecord struct {
	TaskID int    `json:"task_id"`
	State  string `json:"state"`
	// UnixNanos is the orchestrator's virtual-clock time of the transition.
	UnixNanos int64 `json:"t,omitempty"`
}

// DeviceRecord journals one device health transition, so a restarted
// daemon starts from the last known health instead of optimistically
// scheduling onto a device that was dead when it crashed.
type DeviceRecord struct {
	DeviceID string `json:"device_id"`
	State    string `json:"state"` // telemetry.DeviceDegraded/DeviceDead/DeviceRecovered
	Err      string `json:"err,omitempty"`
}

// EpochRecord journals one leadership change. The epoch is a fencing
// token: every replicated append carries the sender's epoch, and a
// receiver rejects epochs below its own, so a paused-and-resumed old
// primary cannot write past a promoted standby.
type EpochRecord struct {
	Epoch  uint64 `json:"epoch"`
	Holder string `json:"holder,omitempty"`
	// TTLNanos is the lease duration the holder announced for this term.
	TTLNanos int64 `json:"ttl,omitempty"`
}

// TaskRecord is one task's recovered state: its spec and the last
// lifecycle phase the journal saw.
type TaskRecord struct {
	ID    int
	Spec  json.RawMessage
	State string
}

// Ended reports whether the task reached a terminal phase and must not be
// re-admitted.
func (t *TaskRecord) Ended() bool {
	return t.State == stateDone || t.State == stateFailed
}

// State is the replayed control-plane state: what a restarted daemon
// re-admits. It is the fold of snapshot + WAL tail.
type State struct {
	// Tasks holds every journaled task by ID, including ended ones until
	// the next compaction.
	Tasks map[int]*TaskRecord
	// Devices holds the last health transition per device ID.
	Devices map[string]*DeviceRecord
	// MaxTaskID is the highest task ID ever journaled. It survives
	// compaction so a restarted daemon never reuses the ID of an ended,
	// compacted-away task.
	MaxTaskID int
	// Epoch is the last journaled leadership term (0: never replicated).
	// It survives snapshots so a rebooted primary resumes fencing from
	// where it left off instead of from 0.
	Epoch uint64
	// Leader is the holder recorded with the last epoch record.
	Leader string
}

// NewState returns an empty state.
func NewState() *State {
	return &State{Tasks: map[int]*TaskRecord{}, Devices: map[string]*DeviceRecord{}}
}

// Live returns the recoverable tasks — journaled, not ended — sorted by
// ID, so restoration re-admits them in original submission order.
func (s *State) Live() []*TaskRecord {
	out := make([]*TaskRecord, 0, len(s.Tasks))
	for _, t := range s.Tasks {
		if !t.Ended() && len(t.Spec) > 0 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DeviceHealth returns the journaled device transitions sorted by ID.
func (s *State) DeviceHealth() []*DeviceRecord {
	out := make([]*DeviceRecord, 0, len(s.Devices))
	for _, d := range s.Devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DeviceID < out[j].DeviceID })
	return out
}

// Compact drops ended tasks: called before a snapshot so the snapshot
// (and thus the journal's steady-state size) tracks the live task set,
// not the daemon's full history.
func (s *State) Compact() {
	for id, t := range s.Tasks {
		if t.Ended() {
			delete(s.Tasks, id)
		}
	}
}

// apply folds one WAL record into the state. Replay is idempotent:
// re-applying a duplicated record leaves the state unchanged, so an
// at-least-once journal writer is safe. Transitions for unknown task IDs
// are skipped — they belong to tasks compacted away or to services whose
// goals are not persistable.
func (s *State) apply(rec Record) error {
	switch rec.Kind {
	case KindTaskSpec:
		var m TaskSpecRecord
		if err := json.Unmarshal(rec.Data, &m); err != nil {
			return fmt.Errorf("%w: task_spec seq %d: %v", ErrCorrupt, rec.Seq, err)
		}
		t, ok := s.Tasks[m.TaskID]
		if !ok {
			t = &TaskRecord{ID: m.TaskID, State: "submitted"}
			s.Tasks[m.TaskID] = t
		}
		t.Spec = m.Spec
		if m.TaskID > s.MaxTaskID {
			s.MaxTaskID = m.TaskID
		}
	case KindTaskState:
		var m TaskStateRecord
		if err := json.Unmarshal(rec.Data, &m); err != nil {
			return fmt.Errorf("%w: task_state seq %d: %v", ErrCorrupt, rec.Seq, err)
		}
		if t, ok := s.Tasks[m.TaskID]; ok {
			t.State = m.State
		}
		if m.TaskID > s.MaxTaskID {
			s.MaxTaskID = m.TaskID
		}
	case KindDevice:
		var m DeviceRecord
		if err := json.Unmarshal(rec.Data, &m); err != nil {
			return fmt.Errorf("%w: device_health seq %d: %v", ErrCorrupt, rec.Seq, err)
		}
		s.Devices[m.DeviceID] = &m
	case KindEpoch:
		var m EpochRecord
		if err := json.Unmarshal(rec.Data, &m); err != nil {
			return fmt.Errorf("%w: epoch seq %d: %v", ErrCorrupt, rec.Seq, err)
		}
		if m.Epoch > s.Epoch {
			s.Epoch = m.Epoch
			s.Leader = m.Holder
		}
	default:
		// Unknown kinds are tolerated (forward compatibility): a newer
		// daemon's records must not brick an older one reading the dir.
	}
	return nil
}

// Apply folds one record into the state; exported for replay-equivalence
// tests and tools that reconstruct state from raw records.
func (s *State) Apply(rec Record) error { return s.apply(rec) }

// stateFile is the snapshot's stable JSON encoding: sorted slices, not
// maps, so snapshots are byte-deterministic for a given state.
type stateFile struct {
	Tasks     []taskFileRecord `json:"tasks"`
	Devices   []DeviceRecord   `json:"devices"`
	MaxTaskID int              `json:"max_task_id,omitempty"`
	// Epoch/Leader are omitted when zero so snapshots from daemons that
	// never replicated stay byte-identical to the pre-replication format.
	Epoch  uint64 `json:"epoch,omitempty"`
	Leader string `json:"leader,omitempty"`
}

type taskFileRecord struct {
	ID    int             `json:"id"`
	State string          `json:"state"`
	Spec  json.RawMessage `json:"spec,omitempty"`
}

func (s *State) encode() stateFile {
	var f stateFile
	ids := make([]int, 0, len(s.Tasks))
	for id := range s.Tasks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := s.Tasks[id]
		f.Tasks = append(f.Tasks, taskFileRecord{ID: t.ID, State: t.State, Spec: t.Spec})
	}
	for _, d := range s.DeviceHealth() {
		f.Devices = append(f.Devices, *d)
	}
	f.MaxTaskID = s.MaxTaskID
	f.Epoch = s.Epoch
	f.Leader = s.Leader
	return f
}

func decodeState(f stateFile) *State {
	s := NewState()
	for _, t := range f.Tasks {
		s.Tasks[t.ID] = &TaskRecord{ID: t.ID, State: t.State, Spec: t.Spec}
	}
	for i := range f.Devices {
		d := f.Devices[i]
		s.Devices[d.DeviceID] = &d
	}
	s.MaxTaskID = f.MaxTaskID
	s.Epoch = f.Epoch
	s.Leader = f.Leader
	return s
}
