package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"surfos/internal/telemetry"
)

// specJSON builds a minimal opaque task spec payload.
func specJSON(id int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"id":%d,"kind":"link","priority":1,"goal":{}}`, id))
}

// appendAll writes a standard record mix: specs for tasks 1-3, transitions
// moving 1 to running, 2 to idle, 3 to done, and one device death.
func appendAll(t *testing.T, s *Store) {
	t.Helper()
	for id := 1; id <= 3; id++ {
		if _, err := s.Append(KindTaskSpec, TaskSpecRecord{TaskID: id, Spec: specJSON(id)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range []TaskStateRecord{
		{TaskID: 1, State: "running"},
		{TaskID: 2, State: "idle"},
		{TaskID: 3, State: "done"},
	} {
		if _, err := s.Append(KindTaskState, tr); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Append(KindDevice, DeviceRecord{DeviceID: "east", State: "device_dead", Err: "heartbeat lost"}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tasks) != 0 || s.Seq() != 0 {
		t.Fatalf("fresh dir not empty: %d tasks, seq %d", len(st.Tasks), s.Seq())
	}
	appendAll(t, s)
	if s.Seq() != 7 {
		t.Fatalf("seq = %d, want 7", s.Seq())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Seq() != 7 {
		t.Errorf("recovered seq = %d, want 7", s2.Seq())
	}
	live := st2.Live()
	if len(live) != 2 || live[0].ID != 1 || live[1].ID != 2 {
		t.Fatalf("live = %+v, want tasks 1 and 2", live)
	}
	if live[0].State != "running" || live[1].State != "idle" {
		t.Errorf("live states = %s, %s", live[0].State, live[1].State)
	}
	if ended := st2.Tasks[3]; ended == nil || !ended.Ended() {
		t.Errorf("task 3 should be recovered as ended: %+v", ended)
	}
	devs := st2.DeviceHealth()
	if len(devs) != 1 || devs[0].DeviceID != "east" || devs[0].State != "device_dead" {
		t.Errorf("devices = %+v", devs)
	}
	// Appends continue the recovered sequence.
	seq, err := s2.Append(KindTaskState, TaskStateRecord{TaskID: 1, State: "idle"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 8 {
		t.Errorf("next seq = %d, want 8", seq)
	}
}

// TestMaxTaskIDSurvivesCompaction: the ID high-water mark outlives the
// ended tasks it came from, across snapshot + reopen, so a restarted
// allocator never reuses a compacted task's ID.
func TestMaxTaskIDSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s)
	// Compact away the ended task 3 and snapshot: task 3's record
	// disappears but its ID stays burned.
	s2, st2, err := reopen(t, s, dir)
	if err != nil {
		t.Fatal(err)
	}
	st2.Compact()
	if err := s2.Snapshot(st2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st3.Tasks[3]; ok {
		t.Error("ended task 3 survived compaction")
	}
	if st3.MaxTaskID != 3 {
		t.Errorf("MaxTaskID = %d, want 3 after compaction", st3.MaxTaskID)
	}
}

// reopen closes s and reopens the dir.
func reopen(t *testing.T, s *Store, dir string) (*Store, *State, error) {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return Open(dir)
}

// TestTruncatedTailRecovers is the crash-mid-write case: a final line with
// no trailing newline is a crash artifact, recovery drops it silently and
// resumes from the last complete record.
func TestTruncatedTailRecovers(t *testing.T) {
	for _, tail := range []string{
		`{"seq":8,"kind":"task_state","da`,     // torn mid-JSON
		`{`,                                    // barely started
		`{"seq":8,"kind":"task_state","data":`, // torn before CRC
	} {
		dir := t.TempDir()
		s, _, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, s)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		wal := filepath.Join(dir, walName)
		f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(tail); err != nil {
			t.Fatal(err)
		}
		f.Close()

		s2, st2, err := Open(dir)
		if err != nil {
			t.Fatalf("tail %q: recovery failed: %v", tail, err)
		}
		if s2.Seq() != 7 {
			t.Errorf("tail %q: seq = %d, want 7", tail, s2.Seq())
		}
		if len(st2.Live()) != 2 {
			t.Errorf("tail %q: live = %d, want 2", tail, len(st2.Live()))
		}
		// The torn bytes must be gone: the next append starts at a line
		// boundary and a further recovery still succeeds.
		if _, err := s2.Append(KindTaskState, TaskStateRecord{TaskID: 1, State: "idle"}); err != nil {
			t.Fatal(err)
		}
		s2.Close()
		s3, st3, err := Open(dir)
		if err != nil {
			t.Fatalf("tail %q: second recovery failed: %v", tail, err)
		}
		if st3.Tasks[1].State != "idle" {
			t.Errorf("tail %q: post-truncation append lost", tail)
		}
		s3.Close()
	}
}

// TestCorruptMidFileRefused: a damaged *complete* record is not a crash
// artifact — it means the file was altered after being written. Recovery
// must refuse loudly, naming the offending sequence number.
func TestCorruptMidFileRefused(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s)
	s.Close()

	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	// Flip task 2's spec payload inside record 2 (mid-file, still
	// newline-terminated): the CRC no longer matches.
	lines[1] = strings.Replace(lines[1], `"kind":"link"`, `"kind":"honk"`, 1)
	if err := os.WriteFile(wal, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt mid-file record: err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "seq 2") {
		t.Errorf("error does not name the offending record: %v", err)
	}
}

// TestCorruptTerminatedTailRefused: damage on the *last* line is still
// corruption when the line is newline-terminated — only an unterminated
// tail is a legitimate crash artifact.
func TestCorruptTerminatedTailRefused(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s)
	s.Close()
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("this is not a record\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("terminated garbage tail: err = %v, want ErrCorrupt", err)
	}
}

// TestSequenceGapRefused: a missing record (sequence break) is corruption,
// even though every surviving line checksums.
func TestSequenceGapRefused(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s)
	s.Close()
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	pruned := append(append([]string{}, lines[:3]...), lines[4:]...) // drop record 4
	if err := os.WriteFile(wal, []byte(strings.Join(pruned, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sequence gap: err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "seq 5") {
		t.Errorf("error does not name the out-of-sequence record: %v", err)
	}
}

// TestDuplicateTransitionsIdempotent: an at-least-once journal writer may
// duplicate a transition; replay must fold duplicates without changing the
// outcome.
func TestDuplicateTransitionsIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(KindTaskSpec, TaskSpecRecord{TaskID: 1, Spec: specJSON(1)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // duplicated transition
		if _, err := s.Append(KindTaskState, TaskStateRecord{TaskID: 1, State: "running"}); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicated spec record too (re-admission after recovery re-emits it).
	if _, err := s.Append(KindTaskSpec, TaskSpecRecord{TaskID: 1, Spec: specJSON(1)}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	live := st.Live()
	if len(live) != 1 || live[0].ID != 1 || live[0].State != "running" {
		t.Fatalf("replay of duplicates: live = %+v", live)
	}
}

// TestSnapshotTailEqualsPureWAL: recovery from snapshot + WAL tail must
// land on exactly the state a pure record-by-record replay produces.
func TestSnapshotTailEqualsPureWAL(t *testing.T) {
	dir := t.TempDir()
	s, st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Keep every record for the pure-replay fold.
	var all []Record
	keep := func(kind string, data any) {
		t.Helper()
		raw, _ := json.Marshal(data)
		seq, err := s.Append(kind, data)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, Record{Seq: seq, Kind: kind, Data: raw})
	}
	keep(KindTaskSpec, TaskSpecRecord{TaskID: 1, Spec: specJSON(1)})
	keep(KindTaskSpec, TaskSpecRecord{TaskID: 2, Spec: specJSON(2)})
	keep(KindTaskState, TaskStateRecord{TaskID: 1, State: "running"})
	keep(KindTaskState, TaskStateRecord{TaskID: 2, State: "done"})

	// Snapshot mid-history (with compaction, as the journal does), then
	// keep appending.
	for _, r := range all {
		if err := st.Apply(r); err != nil {
			t.Fatal(err)
		}
	}
	st.Compact()
	if err := s.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	keep(KindTaskSpec, TaskSpecRecord{TaskID: 3, Spec: specJSON(3)})
	keep(KindTaskState, TaskStateRecord{TaskID: 3, State: "idle"})
	keep(KindDevice, DeviceRecord{DeviceID: "north", State: "device_degraded"})
	s.Close()

	_, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pure := NewState()
	for _, r := range all {
		if err := pure.Apply(r); err != nil {
			t.Fatal(err)
		}
	}
	pure.Compact() // the snapshot compacted; align the pure fold
	gotJSON, _ := json.Marshal(got.encode())
	pureJSON, _ := json.Marshal(pure.encode())
	if string(gotJSON) != string(pureJSON) {
		t.Errorf("snapshot+tail recovery diverges from pure replay:\n got %s\npure %s", gotJSON, pureJSON)
	}
}

// TestSnapshotCrashBeforeTruncate: a crash between the snapshot rename and
// the WAL truncate leaves records the snapshot already covers; replay must
// skip them by sequence instead of reporting corruption. A WAL starting
// *beyond* the snapshot's reach, though, means lost records.
func TestSnapshotCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	s, st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s)
	// Capture the pre-snapshot WAL: these are the "covered" records.
	walBytes, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _, err := readWAL(filepath.Join(dir, walName), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := st.Apply(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate the crash: put the covered records back into the WAL.
	if err := os.WriteFile(filepath.Join(dir, walName), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, st2, err := Open(dir)
	if err != nil {
		t.Fatalf("covered WAL records after snapshot: %v", err)
	}
	if s2.Seq() != 7 {
		t.Errorf("seq = %d, want 7", s2.Seq())
	}
	if len(st2.Live()) != 2 {
		t.Errorf("live = %d, want 2", len(st2.Live()))
	}
	s2.Close()

	// Now a WAL whose first record is *beyond* snapSeq+1: lost records.
	lines := strings.Split(strings.TrimRight(string(walBytes), "\n"), "\n")
	if err := os.WriteFile(filepath.Join(dir, walName), []byte(lines[len(lines)-1]+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Rewrite the snapshot to cover only through seq 3 so record 7 gaps it.
	s3, st3, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[:3] {
		st3.Apply(r)
	}
	s3.seq = 3
	if err := s3.Snapshot(st3); err != nil {
		t.Fatal(err)
	}
	s3.Close()
	if err := os.Rename(filepath.Join(s3.Dir(), snapshotName), filepath.Join(dir, snapshotName)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gapped WAL start: err = %v, want ErrCorrupt", err)
	}
}

// TestCorruptSnapshotRefused: snapshots are written atomically, so any
// damage is corruption, never a crash artifact.
func TestCorruptSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	s, st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s)
	if err := s.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), `"seq":7`, `"seq":8`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered snapshot: err = %v, want ErrCorrupt", err)
	}
}

// event builds a minimal task event for journal tests.
func event(id int, state string, spec json.RawMessage) telemetry.TaskEvent {
	return telemetry.TaskEvent{Time: time.Unix(0, int64(id)), TaskID: id, State: state, Spec: spec}
}

func TestJournalConsume(t *testing.T) {
	dir := t.TempDir()
	s, st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(s, st)
	steps := []telemetry.TaskEvent{
		event(1, telemetry.TaskSubmitted, specJSON(1)),
		event(1, telemetry.TaskScheduled, nil),
		event(1, telemetry.TaskRunning, nil),
		event(2, telemetry.TaskSubmitted, specJSON(2)),
		event(2, telemetry.TaskFailed, nil),
		// Unpersistable submission (no spec): skipped entirely, as are its
		// later transitions.
		event(9, telemetry.TaskSubmitted, nil),
		event(9, telemetry.TaskRunning, nil),
		// Device health and the derived replanned marker.
		{State: telemetry.DeviceDead, DeviceID: "east", Err: "gone"},
		{State: telemetry.Replanned, DeviceID: "east"},
	}
	for _, ev := range steps {
		if err := j.Consume(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	live := got.Live()
	if len(live) != 1 || live[0].ID != 1 || live[0].State != telemetry.TaskRunning {
		t.Fatalf("live = %+v", live)
	}
	if tk := got.Tasks[2]; tk == nil || !tk.Ended() {
		t.Errorf("task 2 should be journaled as failed: %+v", tk)
	}
	if got.Tasks[9] != nil {
		t.Error("unpersistable task 9 journaled")
	}
	devs := got.DeviceHealth()
	if len(devs) != 1 || devs[0].State != telemetry.DeviceDead || devs[0].Err != "gone" {
		t.Errorf("devices = %+v", devs)
	}
}

// TestJournalAutoSnapshot: crossing the snapshot threshold compacts the
// WAL and drops ended tasks from the snapshot.
func TestJournalAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(s, st)
	j.SetSnapshotEvery(4)
	if err := j.Consume(event(1, telemetry.TaskSubmitted, specJSON(1))); err != nil {
		t.Fatal(err)
	}
	if err := j.Consume(event(1, telemetry.TaskDone, nil)); err != nil {
		t.Fatal(err)
	}
	if err := j.Consume(event(2, telemetry.TaskSubmitted, specJSON(2))); err != nil {
		t.Fatal(err)
	}
	if err := j.Consume(event(2, telemetry.TaskRunning, nil)); err != nil {
		t.Fatal(err)
	}
	// Threshold crossed: the WAL must be compacted down.
	fi, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Errorf("WAL not compacted after auto-snapshot: %d bytes", fi.Size())
	}
	j.Close()

	s2, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Seq() != 4 {
		t.Errorf("seq = %d, want 4 (from snapshot)", s2.Seq())
	}
	if got.Tasks[1] != nil {
		t.Error("ended task 1 survived compaction")
	}
	live := got.Live()
	if len(live) != 1 || live[0].ID != 2 || live[0].State != telemetry.TaskRunning {
		t.Fatalf("live = %+v", live)
	}
}
