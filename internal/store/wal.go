// Package store is the control plane's durability layer: an append-only
// JSONL write-ahead log plus a periodic snapshot, from which a restarted
// daemon recovers every task that was submitted and not yet ended.
//
// Durability model (DESIGN.md §10): only *inputs* are persisted — task
// specs, lifecycle transitions, and device health transitions. Plans,
// optimizer state and codebooks are derived and deliberately recomputed
// from scratch at recovery time against the *current* surface and health
// state, which may have changed while the daemon was down.
//
// The WAL is one JSON record per line, each carrying a monotonically
// increasing sequence number and a CRC32 over its payload. Recovery
// tolerates a truncated final record (a crash mid-write leaves an
// unterminated line — even a fully parseable one whose newline was lost —
// which is discarded as never-acknowledged) but refuses corruption
// anywhere before the tail: a newline-terminated record that fails its
// CRC, fails to parse, or breaks the sequence means the file was damaged
// after being written, and silently dropping it could resurrect or lose
// tasks.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// ErrCorrupt marks a WAL or snapshot damaged anywhere before the final
// (possibly half-written) record. Recovery refuses to proceed past it.
var ErrCorrupt = errors.New("store: corrupt")

// ErrSeqGap marks a replicated record that skips past the receiver's next
// expected sequence number: records were lost in flight (e.g. the shipper
// overran its buffer) and the follower needs a fresh snapshot to resync.
var ErrSeqGap = errors.New("store: replication sequence gap")

// ErrStaleEpoch marks a replicated append or heartbeat carrying an epoch
// below the receiver's: the sender is a deposed primary (paused, resumed,
// and still writing at its old term) and must be fenced, not obeyed.
var ErrStaleEpoch = errors.New("store: stale epoch")

// WAL and snapshot file names inside the state directory.
const (
	walName      = "wal.jsonl"
	snapshotName = "snapshot.json"
)

// Record is one durable WAL entry.
type Record struct {
	// Seq is the record's monotonic sequence number (previous record + 1).
	Seq uint64 `json:"seq"`
	// Kind discriminates Data (KindTaskSpec, KindTaskState, KindDevice).
	Kind string `json:"kind"`
	// Data is the kind-specific payload, preserved byte-exactly.
	Data json.RawMessage `json:"data"`
	// CRC is crc32.ChecksumIEEE over "<seq>|<kind>|<data>". It is the last
	// field on the line, so a partial flush cannot produce a record that
	// both parses and checksums.
	CRC uint32 `json:"crc"`
}

// checksum computes the record CRC over the sequence, kind and payload.
func checksum(seq uint64, kind string, data []byte) uint32 {
	h := crc32.NewIEEE()
	var buf [20]byte
	h.Write(strconv.AppendUint(buf[:0], seq, 10))
	h.Write([]byte{'|'})
	h.Write([]byte(kind))
	h.Write([]byte{'|'})
	h.Write(data)
	return h.Sum32()
}

// SyncPolicy selects when the WAL calls fsync.
type SyncPolicy int

const (
	// SyncEveryRecord fsyncs after each append: a record handed to Append
	// survives a machine crash. This is the default — the control plane
	// journals tens of records per reconcile, not thousands per second.
	SyncEveryRecord SyncPolicy = iota
	// SyncOnClose only flushes to the OS per record and fsyncs at Close/
	// Snapshot: a *process* crash loses nothing, a machine crash may lose
	// the tail (which recovery then treats as truncation).
	SyncOnClose
)

// Store is an open state directory: the append handle on the WAL plus the
// recovery bookkeeping. Methods are not safe for concurrent use; the
// Journal serializes all writers.
type Store struct {
	dir      string
	f        *os.File
	w        *bufio.Writer
	seq      uint64 // last sequence number written or recovered
	policy   SyncPolicy
	walBytes int64     // bytes of good WAL records on disk
	snapTime time.Time // when the current snapshot was written (zero: none)
}

// Open opens (creating if needed) the state directory, recovers the
// snapshot and WAL tail into a State, truncates any half-written final
// record, and returns the store positioned to append after the last good
// record. A corrupt snapshot or a corrupt non-tail WAL record returns
// ErrCorrupt and leaves the files untouched for forensics.
func Open(dir string) (*Store, *State, error) {
	if dir == "" {
		return nil, nil, errors.New("store: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	st, snapSeq, err := readSnapshot(filepath.Join(dir, snapshotName))
	if err != nil {
		return nil, nil, err
	}
	recs, lastSeq, goodLen, err := readWAL(filepath.Join(dir, walName), snapSeq)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range recs {
		if err := st.apply(r); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// Make the WAL's directory entry durable: a crash right after boot must
	// not lose the file (and with it, every record fsynced into it).
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop the truncated tail (crash mid-write) before appending: the next
	// record must start at a line boundary.
	if err := f.Truncate(goodLen); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(goodLen, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	seq := lastSeq
	if snapSeq > seq {
		seq = snapSeq
	}
	s := &Store{dir: dir, f: f, w: bufio.NewWriter(f), seq: seq, walBytes: goodLen}
	if fi, err := os.Stat(filepath.Join(dir, snapshotName)); err == nil {
		s.snapTime = fi.ModTime()
	}
	return s, st, nil
}

// SetSyncPolicy selects the fsync cadence (default SyncEveryRecord).
func (s *Store) SetSyncPolicy(p SyncPolicy) { s.policy = p }

// Seq returns the last sequence number written or recovered.
func (s *Store) Seq() uint64 { return s.seq }

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// Append marshals data and writes one WAL record, flushing to the OS and
// (per policy) fsyncing before returning its sequence number.
func (s *Store) Append(kind string, data any) (uint64, error) {
	rec, err := s.AppendFull(kind, data)
	return rec.Seq, err
}

// AppendFull is Append returning the complete record — sequence, CRC and
// marshaled payload — for callers that forward it verbatim, such as the
// replication shipper.
func (s *Store) AppendFull(kind string, data any) (Record, error) {
	if s.f == nil {
		return Record{}, errors.New("store: closed")
	}
	raw, err := json.Marshal(data)
	if err != nil {
		return Record{}, err
	}
	rec := Record{Seq: s.seq + 1, Kind: kind, Data: raw}
	rec.CRC = checksum(rec.Seq, rec.Kind, rec.Data)
	if err := s.writeLine(rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// AppendRecord writes one already-sequenced record verbatim — the
// follower side of WAL shipping. The record's CRC is re-verified and its
// sequence must extend the local chain: a duplicate (seq ≤ current, a
// re-send after reconnect) is skipped without error, a gap is ErrSeqGap.
// Writing verbatim keeps the follower's WAL byte-identical to the
// primary's, so recovery and promotion replay the exact same records.
func (s *Store) AppendRecord(rec Record) error {
	if s.f == nil {
		return errors.New("store: closed")
	}
	if got := checksum(rec.Seq, rec.Kind, rec.Data); got != rec.CRC {
		return fmt.Errorf("%w: replicated record seq %d: crc mismatch (stored %08x, computed %08x)", ErrCorrupt, rec.Seq, rec.CRC, got)
	}
	if rec.Seq <= s.seq {
		return nil // idempotent re-send
	}
	if rec.Seq != s.seq+1 {
		return fmt.Errorf("%w: got seq %d, want %d", ErrSeqGap, rec.Seq, s.seq+1)
	}
	return s.writeLine(rec)
}

// writeLine marshals and appends one record line, advancing seq and the
// size accounting. The record must already carry seq s.seq+1 and its CRC.
func (s *Store) writeLine(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(line); err != nil {
		return err
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	if s.policy == SyncEveryRecord {
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	s.seq = rec.Seq
	s.walBytes += int64(len(line)) + 1
	return nil
}

// WALSize reports the bytes of acknowledged WAL records on disk — the
// growth since the last compaction, one input to snapshot cadence and
// promotion-readiness decisions.
func (s *Store) WALSize() int64 { return s.walBytes }

// SnapshotTime reports when the current snapshot was written (recovered
// from the file's mtime after a restart); zero means no snapshot exists.
func (s *Store) SnapshotTime() time.Time { return s.snapTime }

// Sync flushes buffered records and fsyncs the WAL.
func (s *Store) Sync() error {
	if s.f == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes, fsyncs, and releases the WAL handle.
func (s *Store) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// Snapshot atomically persists the given state at the current sequence
// number and compacts the WAL: the snapshot is written to a temp file,
// fsynced, renamed over snapshot.json, the rename made durable with a
// directory fsync, and only then is the WAL reset to empty. The ordering
// is load-bearing: truncating first (or truncating after a rename that is
// not yet durable) could leave the old snapshot with an empty WAL, losing
// every record since the previous snapshot. With the directory fsync in
// between, a crash at any point merely leaves WAL records the snapshot
// already covers — replay skips them by sequence.
func (s *Store) Snapshot(st *State) error {
	if s.f == nil {
		return errors.New("store: closed")
	}
	data, err := EncodeSnapshot(s.seq, st)
	if err != nil {
		return err
	}
	return s.writeSnapshot(data, s.seq)
}

// InstallSnapshot verifies and atomically persists a snapshot received
// from a replication peer, resets the WAL, and returns the decoded state
// positioned at the snapshot's sequence. It is the follower's resync
// path: after it, AppendRecord continues the chain from the returned
// sequence.
func (s *Store) InstallSnapshot(data []byte) (*State, error) {
	if s.f == nil {
		return nil, errors.New("store: closed")
	}
	st, seq, err := DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	if err := s.writeSnapshot(data, seq); err != nil {
		return nil, err
	}
	return st, nil
}

// writeSnapshot persists pre-encoded snapshot bytes with the atomic
// temp+fsync+rename+dir-fsync dance, then compacts the WAL and moves the
// store's sequence to the snapshot's.
func (s *Store) writeSnapshot(data []byte, seq uint64) error {
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return err
	}
	// The rename must be durable before the WAL shrinks: on power loss a
	// truncate can reach disk while an un-fsynced rename does not.
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// Compaction: every record ≤ the snapshot seq is now covered by it.
	if err := s.f.Truncate(0); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, 0); err != nil {
		return err
	}
	s.w.Reset(s.f)
	if err := s.f.Sync(); err != nil {
		return err
	}
	// The snapshot is now authoritative: the WAL is empty and the chain
	// continues from its sequence (a no-op for local Snapshot, the resync
	// point for InstallSnapshot).
	s.seq = seq
	s.walBytes = 0
	s.snapTime = time.Now()
	return nil
}

// EncodeSnapshot renders a state at a sequence number into the snapshot
// file format — the bytes Snapshot persists and the replication channel
// ships. The encoding is byte-deterministic for a given state.
func EncodeSnapshot(seq uint64, st *State) ([]byte, error) {
	snap := snapshotFile{Seq: seq, State: st.encode()}
	raw, err := json.Marshal(snap.State)
	if err != nil {
		return nil, err
	}
	snap.CRC = checksum(seq, "snapshot", raw)
	return json.Marshal(snap)
}

// DecodeSnapshot parses and CRC-verifies snapshot bytes, returning the
// state and the WAL sequence it covers through.
func DecodeSnapshot(data []byte) (*State, uint64, error) {
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, 0, fmt.Errorf("%w: snapshot: %v", ErrCorrupt, err)
	}
	raw, err := json.Marshal(snap.State)
	if err != nil {
		return nil, 0, err
	}
	if got := checksum(snap.Seq, "snapshot", raw); got != snap.CRC {
		return nil, 0, fmt.Errorf("%w: snapshot crc mismatch (stored %08x, computed %08x)", ErrCorrupt, snap.CRC, got)
	}
	return decodeState(snap.State), snap.Seq, nil
}

// syncDir fsyncs a directory so the metadata operations inside it (file
// creation, rename) are durable, not just the file contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// snapshotFile is the on-disk snapshot envelope.
type snapshotFile struct {
	// Seq is the WAL sequence the snapshot covers through.
	Seq uint64 `json:"seq"`
	// State is the encoded task/device state.
	State stateFile `json:"state"`
	// CRC covers "<seq>|snapshot|<state-json>".
	CRC uint32 `json:"crc"`
}

// readSnapshot loads and verifies snapshot.json; a missing file yields an
// empty state at sequence 0. Unlike the WAL tail, a snapshot is written
// atomically (temp + rename), so any damage is corruption, never an
// expected crash artifact.
func readSnapshot(path string) (*State, uint64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return NewState(), 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	return DecodeSnapshot(data)
}

// readWAL scans the WAL, returning the records with sequence > afterSeq,
// the last good sequence number, and the byte length of the good prefix.
// Any unterminated final line is treated as a crash-truncated tail and
// excluded — even one that parses and checksums. Append acknowledges a
// record only after its trailing newline reaches the file, so a missing
// newline means the record was never reported durable, and accepting it
// would leave the file mid-line: the next Append would glue a second
// record onto the same line and poison the *following* recovery. Any
// damage on a newline-terminated line is ErrCorrupt, tagged with the
// offending sequence number where one could be read.
//
// The WAL may legitimately begin before afterSeq: a crash between the
// snapshot rename and the WAL truncate leaves records the snapshot
// already covers, which replay skips by sequence. A first record *after*
// afterSeq+1, though, means records were lost — corruption.
func readWAL(path string, afterSeq uint64) (recs []Record, lastSeq uint64, goodLen int64, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, afterSeq, 0, nil
	}
	if err != nil {
		return nil, 0, 0, err
	}
	lastSeq = afterSeq
	var prev uint64
	first := true
	var off int64
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Crash mid-write: the final record's newline never made it to
			// disk, so the record was never acknowledged. Recover to the
			// last complete record and truncate the unterminated tail.
			return recs, lastSeq, off, nil
		}
		line := data[:nl]
		rec, verr := verifyLine(line, prev, first)
		if verr == nil && first && rec.Seq > afterSeq+1 {
			verr = fmt.Errorf("%w: wal starts at seq %d but snapshot covers only through %d", ErrCorrupt, rec.Seq, afterSeq)
		}
		if verr != nil {
			return nil, 0, 0, verr
		}
		first = false
		prev = rec.Seq
		if rec.Seq > afterSeq {
			recs = append(recs, rec)
			lastSeq = rec.Seq
		}
		off += int64(nl) + 1
		data = data[nl+1:]
	}
	return recs, lastSeq, off, nil
}

// verifyLine parses and validates one WAL line against the previous
// record's sequence number (the first line of a file anchors the chain).
func verifyLine(line []byte, prevSeq uint64, first bool) (Record, error) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return Record{}, fmt.Errorf("%w: wal record after seq %d: %v", ErrCorrupt, prevSeq, err)
	}
	if got := checksum(rec.Seq, rec.Kind, rec.Data); got != rec.CRC {
		return Record{}, fmt.Errorf("%w: wal record seq %d: crc mismatch (stored %08x, computed %08x)", ErrCorrupt, rec.Seq, rec.CRC, got)
	}
	if !first && rec.Seq != prevSeq+1 {
		return Record{}, fmt.Errorf("%w: wal record seq %d breaks sequence (previous %d)", ErrCorrupt, rec.Seq, prevSeq)
	}
	return rec, nil
}
