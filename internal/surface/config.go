package surface

import (
	"errors"
	"fmt"
	"math"
)

// Config is one surface configuration: a per-element array of signal
// property alteration values (row-major). For Phase the values are radians
// in [0, 2π); for Amplitude they are gains in [0, 1].
type Config struct {
	Property ControlProperty
	Values   []float64
}

// ErrConfigSize is returned when a config's element count does not match
// the target surface.
var ErrConfigSize = errors.New("surface: config element count mismatch")

// Clone returns a deep copy.
func (c Config) Clone() Config {
	v := make([]float64, len(c.Values))
	copy(v, c.Values)
	return Config{Property: c.Property, Values: v}
}

// Validate checks the config against a layout and property-specific ranges.
func (c Config) Validate(l Layout) error {
	if len(c.Values) != l.NumElements() {
		return fmt.Errorf("%w: have %d values, surface has %d elements",
			ErrConfigSize, len(c.Values), l.NumElements())
	}
	for i, v := range c.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("surface: config value %d is not finite", i)
		}
		if c.Property == Amplitude && (v < 0 || v > 1) {
			return fmt.Errorf("surface: amplitude value %d = %g outside [0,1]", i, v)
		}
	}
	return nil
}

// wrapPhase maps an angle to [0, 2π).
func wrapPhase(v float64) float64 {
	v = math.Mod(v, 2*math.Pi)
	if v < 0 {
		v += 2 * math.Pi
	}
	return v
}

// Normalize wraps phase values into [0, 2π) (no-op for other properties).
func (c Config) Normalize() Config {
	if c.Property != Phase {
		return c.Clone()
	}
	out := c.Clone()
	for i, v := range out.Values {
		out.Values[i] = wrapPhase(v)
	}
	return out
}

// Quantize snaps phase values to the 2^bits discrete states a design
// supports (e.g. 1-bit surfaces have states {0, π}). bits <= 0 means
// continuous control and returns a normalized copy.
func (c Config) Quantize(bits int) Config {
	out := c.Normalize()
	if bits <= 0 || c.Property != Phase {
		return out
	}
	n := float64(int(1) << bits)
	step := 2 * math.Pi / n
	for i, v := range out.Values {
		out.Values[i] = wrapPhase(math.Round(v/step) * step)
	}
	return out
}

// circularMean returns the mean angle of phases (the argument of the phasor
// sum), in [0, 2π). Returns 0 for an empty or perfectly-cancelling set.
func circularMean(phases []float64) float64 {
	var sr, si float64
	for _, p := range phases {
		sr += math.Cos(p)
		si += math.Sin(p)
	}
	if sr == 0 && si == 0 {
		return 0
	}
	return wrapPhase(math.Atan2(si, sr))
}

// ProjectGranularity returns the closest configuration realizable under the
// given control granularity: column-wise shares one value per column (the
// circular mean for phases, arithmetic mean otherwise), row-wise per row,
// and FixedPattern is the identity here (fixedness is a *reconfiguration*
// constraint enforced by drivers, not a shape constraint).
//
// The projection is idempotent: P(P(c)) == P(c).
func (c Config) ProjectGranularity(g Granularity, l Layout) Config {
	out := c.Clone()
	mean := func(vals []float64) float64 {
		if c.Property == Phase {
			return circularMean(vals)
		}
		var s float64
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	}
	switch g {
	case ColumnWise:
		col := make([]float64, l.Rows)
		for cI := 0; cI < l.Cols; cI++ {
			for r := 0; r < l.Rows; r++ {
				col[r] = c.Values[r*l.Cols+cI]
			}
			m := mean(col)
			for r := 0; r < l.Rows; r++ {
				out.Values[r*l.Cols+cI] = m
			}
		}
	case RowWise:
		for r := 0; r < l.Rows; r++ {
			row := c.Values[r*l.Cols : (r+1)*l.Cols]
			m := mean(row)
			for cI := 0; cI < l.Cols; cI++ {
				out.Values[r*l.Cols+cI] = m
			}
		}
	}
	return out
}

// Codebook is a named set of locally-stored configurations — the surface's
// analogue of a switch's forwarding table or an 802.11ad beam codebook
// (paper §3.1). Programmable surfaces select among stored entries in real
// time from endpoint feedback; the control plane replaces entries
// asynchronously.
type Codebook struct {
	Entries []Config
	Labels  []string
}

// Add appends a labelled configuration and returns its index.
func (cb *Codebook) Add(label string, cfg Config) int {
	cb.Entries = append(cb.Entries, cfg.Clone())
	cb.Labels = append(cb.Labels, label)
	return len(cb.Entries) - 1
}

// Len returns the number of stored entries.
func (cb *Codebook) Len() int { return len(cb.Entries) }

// At returns entry i.
func (cb *Codebook) At(i int) (Config, error) {
	if i < 0 || i >= len(cb.Entries) {
		return Config{}, fmt.Errorf("surface: codebook index %d out of range [0,%d)", i, len(cb.Entries))
	}
	return cb.Entries[i], nil
}
