// Package surface models metasurface hardware at the signal level: panels
// of sub-wavelength elements, the configurations that program them, control
// granularity constraints, and phase-state quantization.
//
// A configuration is "an array of signal property alteration values for
// each surface element" (paper §3.1) — the unified currency every SurfOS
// layer trades in, regardless of which physical design is underneath.
package surface

import (
	"fmt"
	"math"

	"surfos/internal/em"
	"surfos/internal/geom"
)

// ControlProperty is the fundamental signal property a surface element
// alters (paper §3.1: amplitude, phase, frequency, polarization; plus the
// impedance and diffraction modes seen in Table 1 hardware).
type ControlProperty uint8

// Control properties.
const (
	Phase ControlProperty = iota
	Amplitude
	Polarization
	Frequency
	Impedance
	Diffraction
)

var propertyNames = map[ControlProperty]string{
	Phase:        "phase",
	Amplitude:    "amplitude",
	Polarization: "polarization",
	Frequency:    "frequency",
	Impedance:    "impedance",
	Diffraction:  "diffraction",
}

// String implements fmt.Stringer.
func (p ControlProperty) String() string {
	if s, ok := propertyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("property(%d)", uint8(p))
}

// OpMode says whether a surface operates on reflection, transmission, or
// both (the T/R column of the paper's Table 1).
type OpMode uint8

// Operation modes.
const (
	Reflective OpMode = 1 << iota
	Transmissive
)

// Transflective surfaces (e.g. mmWall) support both modes.
const Transflective = Reflective | Transmissive

// String implements fmt.Stringer.
func (m OpMode) String() string {
	switch m {
	case Reflective:
		return "R"
	case Transmissive:
		return "T"
	case Transflective:
		return "T&R"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Reflects reports whether the mode includes reflection.
func (m OpMode) Reflects() bool { return m&Reflective != 0 }

// Transmits reports whether the mode includes transmission.
func (m OpMode) Transmits() bool { return m&Transmissive != 0 }

// Granularity is the finest unit of independent element control a design
// supports. High-frequency programmable surfaces often share states per
// column (mmWall, NR-Surface); Scrolls shares per row; passive surfaces fix
// the whole pattern at fabrication.
type Granularity uint8

// Granularities, finest first.
const (
	ElementWise Granularity = iota
	ColumnWise
	RowWise
	FixedPattern // one-time programmable at fabrication
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case ElementWise:
		return "element-wise"
	case ColumnWise:
		return "column-wise"
	case RowWise:
		return "row-wise"
	case FixedPattern:
		return "fixed"
	}
	return fmt.Sprintf("granularity(%d)", uint8(g))
}

// Layout describes the element grid of a panel: Rows×Cols elements at the
// given pitch (meters). Pitch is typically λ/2 at the design frequency.
type Layout struct {
	Rows, Cols     int
	PitchU, PitchV float64 // element spacing along panel width / height
}

// NumElements returns Rows*Cols.
func (l Layout) NumElements() int { return l.Rows * l.Cols }

// Validate checks the layout is physically meaningful.
func (l Layout) Validate() error {
	if l.Rows <= 0 || l.Cols <= 0 {
		return fmt.Errorf("surface: layout %dx%d must be positive", l.Rows, l.Cols)
	}
	if l.PitchU <= 0 || l.PitchV <= 0 {
		return fmt.Errorf("surface: element pitch (%g, %g) must be positive", l.PitchU, l.PitchV)
	}
	return nil
}

// HalfWaveLayout builds a layout with λ/2 pitch at freqHz sized to fill a
// w×h meter panel.
func HalfWaveLayout(freqHz, w, h float64) Layout {
	pitch := em.Wavelength(freqHz) / 2
	cols := int(w / pitch)
	rows := int(h / pitch)
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return Layout{Rows: rows, Cols: cols, PitchU: pitch, PitchV: pitch}
}

// Surface is one physical metasurface panel placed in a scene: geometry,
// element layout, operating mode, and per-element radiation pattern.
// Surface is the *model* the simulator uses; drivers wrap a Surface with
// design-specific constraints (granularity, quantization, cost).
type Surface struct {
	Name    string
	Panel   *geom.Quad
	Layout  Layout
	Mode    OpMode
	Pattern em.Pattern

	positions []geom.Vec3 // cached element centers, row-major
}

// New validates and builds a surface.
func New(name string, panel *geom.Quad, layout Layout, mode OpMode, pattern em.Pattern) (*Surface, error) {
	if panel == nil {
		return nil, fmt.Errorf("surface %q: nil panel", name)
	}
	if err := layout.Validate(); err != nil {
		return nil, fmt.Errorf("surface %q: %w", name, err)
	}
	if pattern == nil {
		pattern = em.CosinePattern{Q: 1}
	}
	s := &Surface{Name: name, Panel: panel, Layout: layout, Mode: mode, Pattern: pattern}
	s.positions = s.computePositions()
	return s, nil
}

// computePositions lays the element grid centered on the panel.
func (s *Surface) computePositions() []geom.Vec3 {
	c := s.Panel.Corners()
	u := c[1].Sub(c[0]).Normalize()
	v := c[3].Sub(c[0]).Normalize()
	center := s.Panel.Center()
	w := float64(s.Layout.Cols) * s.Layout.PitchU
	h := float64(s.Layout.Rows) * s.Layout.PitchV
	origin := center.Sub(u.Scale(w / 2)).Sub(v.Scale(h / 2))
	pos := make([]geom.Vec3, 0, s.Layout.NumElements())
	for r := 0; r < s.Layout.Rows; r++ {
		for col := 0; col < s.Layout.Cols; col++ {
			p := origin.
				Add(u.Scale((float64(col) + 0.5) * s.Layout.PitchU)).
				Add(v.Scale((float64(r) + 0.5) * s.Layout.PitchV))
			pos = append(pos, p)
		}
	}
	return pos
}

// NumElements returns the element count.
func (s *Surface) NumElements() int { return s.Layout.NumElements() }

// ElementPositions returns the cached element centers in row-major order.
// The returned slice must not be modified.
func (s *Surface) ElementPositions() []geom.Vec3 { return s.positions }

// Normal returns the panel's unit normal (the side a reflective surface
// serves).
func (s *Surface) Normal() geom.Vec3 { return s.Panel.Normal() }

// ElementIndex converts (row, col) to the row-major element index.
func (s *Surface) ElementIndex(row, col int) int { return row*s.Layout.Cols + col }

// AreaM2 returns the element grid's physical area in square meters, the
// quantity the paper's Figure 4(c) sweeps.
func (s *Surface) AreaM2() float64 {
	return float64(s.Layout.Rows) * s.Layout.PitchV * float64(s.Layout.Cols) * s.Layout.PitchU
}

// Off returns the all-zero (mirror-like / pass-through) configuration.
func (s *Surface) Off() Config {
	return Config{Property: Phase, Values: make([]float64, s.NumElements())}
}

// SteeringConfig computes the phase configuration that coherently combines
// energy from point src to point dst: each element's phase shift cancels the
// propagation phase of its src→element→dst path so all element contributions
// add in phase at dst. This is the classic RIS beamforming codebook entry.
func (s *Surface) SteeringConfig(src, dst geom.Vec3, freqHz float64) Config {
	k := em.Wavenumber(freqHz)
	vals := make([]float64, s.NumElements())
	for i, p := range s.positions {
		d := src.Dist(p) + p.Dist(dst)
		// The propagation phase is -k·d; the element must add +k·d (mod 2π)
		// so the total phase is constant across elements.
		vals[i] = math.Mod(k*d, 2*math.Pi)
	}
	return Config{Property: Phase, Values: vals}
}
