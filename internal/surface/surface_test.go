package surface

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"surfos/internal/em"
	"surfos/internal/geom"
)

func testPanel() *geom.Quad {
	// 1m × 0.5m vertical panel in the y=0 plane facing +y.
	return geom.RectXY(geom.V(0, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 1, 0.5)
}

func testSurface(t *testing.T, rows, cols int) *Surface {
	t.Helper()
	s, err := New("test", testPanel(), Layout{Rows: rows, Cols: cols, PitchU: 0.00625, PitchV: 0.00625}, Reflective, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil, Layout{Rows: 1, Cols: 1, PitchU: 1, PitchV: 1}, Reflective, nil); err == nil {
		t.Error("nil panel accepted")
	}
	if _, err := New("x", testPanel(), Layout{Rows: 0, Cols: 1, PitchU: 1, PitchV: 1}, Reflective, nil); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := New("x", testPanel(), Layout{Rows: 1, Cols: 1, PitchU: 0, PitchV: 1}, Reflective, nil); err == nil {
		t.Error("zero pitch accepted")
	}
}

func TestElementPositionsOnPanelPlane(t *testing.T) {
	s := testSurface(t, 8, 16)
	if got := s.NumElements(); got != 128 {
		t.Fatalf("elements = %d, want 128", got)
	}
	pl := s.Panel.Plane()
	for i, p := range s.ElementPositions() {
		if math.Abs(pl.SignedDist(p)) > 1e-9 {
			t.Fatalf("element %d at %v off the panel plane", i, p)
		}
	}
	// Grid is centered: mean of positions equals the panel center.
	var sum geom.Vec3
	for _, p := range s.ElementPositions() {
		sum = sum.Add(p)
	}
	mean := sum.Scale(1 / float64(s.NumElements()))
	if !mean.ApproxEqual(s.Panel.Center(), 1e-9) {
		t.Errorf("element centroid %v != panel center %v", mean, s.Panel.Center())
	}
}

func TestElementSpacing(t *testing.T) {
	s := testSurface(t, 2, 3)
	pos := s.ElementPositions()
	// Adjacent elements in a row are PitchU apart.
	if d := pos[0].Dist(pos[1]); math.Abs(d-0.00625) > 1e-9 {
		t.Errorf("row spacing = %v", d)
	}
	// Adjacent rows are PitchV apart.
	if d := pos[0].Dist(pos[s.Layout.Cols]); math.Abs(d-0.00625) > 1e-9 {
		t.Errorf("col spacing = %v", d)
	}
}

func TestHalfWaveLayout(t *testing.T) {
	l := HalfWaveLayout(em.Band24G, 0.5, 0.25)
	pitch := em.Wavelength(em.Band24G) / 2
	if math.Abs(l.PitchU-pitch) > 1e-12 {
		t.Errorf("pitch = %v, want %v", l.PitchU, pitch)
	}
	if l.Cols != int(0.5/pitch) || l.Rows != int(0.25/pitch) {
		t.Errorf("layout %dx%d unexpected", l.Rows, l.Cols)
	}
	// Degenerate tiny panel still gets one element.
	l2 := HalfWaveLayout(em.Band2G4, 0.01, 0.01)
	if l2.Rows != 1 || l2.Cols != 1 {
		t.Errorf("tiny panel layout %dx%d, want 1x1", l2.Rows, l2.Cols)
	}
}

func TestOpModeFlags(t *testing.T) {
	if !Reflective.Reflects() || Reflective.Transmits() {
		t.Error("reflective flags wrong")
	}
	if Transmissive.Reflects() || !Transmissive.Transmits() {
		t.Error("transmissive flags wrong")
	}
	if !Transflective.Reflects() || !Transflective.Transmits() {
		t.Error("transflective flags wrong")
	}
	if Transflective.String() != "T&R" || Reflective.String() != "R" || Transmissive.String() != "T" {
		t.Error("mode strings wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	l := Layout{Rows: 2, Cols: 2, PitchU: 1, PitchV: 1}
	ok := Config{Property: Phase, Values: []float64{0, 1, 2, 3}}
	if err := ok.Validate(l); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := Config{Property: Phase, Values: []float64{0, 1}}
	if err := bad.Validate(l); err == nil {
		t.Error("size mismatch accepted")
	}
	nan := Config{Property: Phase, Values: []float64{0, math.NaN(), 0, 0}}
	if err := nan.Validate(l); err == nil {
		t.Error("NaN accepted")
	}
	amp := Config{Property: Amplitude, Values: []float64{0, 0.5, 1, 1.5}}
	if err := amp.Validate(l); err == nil {
		t.Error("out-of-range amplitude accepted")
	}
}

func TestQuantize1Bit(t *testing.T) {
	c := Config{Property: Phase, Values: []float64{0.1, 3.0, 6.2, math.Pi}}
	q := c.Quantize(1)
	want := []float64{0, math.Pi, 0, math.Pi}
	for i := range q.Values {
		if math.Abs(q.Values[i]-want[i]) > 1e-9 {
			t.Errorf("q[%d] = %v, want %v", i, q.Values[i], want[i])
		}
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	f := func(vals [8]float64, bits uint8) bool {
		b := int(bits%4) + 1
		c := Config{Property: Phase, Values: vals[:]}
		q1 := c.Quantize(b)
		q2 := q1.Quantize(b)
		for i := range q1.Values {
			if math.Abs(q1.Values[i]-q2.Values[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizeContinuousNormalizes(t *testing.T) {
	c := Config{Property: Phase, Values: []float64{-1, 7, 2 * math.Pi}}
	q := c.Quantize(0)
	for i, v := range q.Values {
		if v < 0 || v >= 2*math.Pi {
			t.Errorf("value %d = %v not normalized", i, v)
		}
	}
	// Original untouched.
	if c.Values[0] != -1 {
		t.Error("Quantize mutated the input")
	}
}

func TestProjectGranularityColumn(t *testing.T) {
	l := Layout{Rows: 2, Cols: 3, PitchU: 1, PitchV: 1}
	c := Config{Property: Amplitude, Values: []float64{
		0.0, 0.2, 0.4,
		1.0, 0.8, 0.6,
	}}
	p := c.ProjectGranularity(ColumnWise, l)
	want := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	for i := range p.Values {
		if math.Abs(p.Values[i]-want[i]) > 1e-9 {
			t.Errorf("col proj[%d] = %v, want %v", i, p.Values[i], want[i])
		}
	}
}

func TestProjectGranularityRow(t *testing.T) {
	l := Layout{Rows: 2, Cols: 2, PitchU: 1, PitchV: 1}
	c := Config{Property: Amplitude, Values: []float64{0.2, 0.4, 0.6, 1.0}}
	p := c.ProjectGranularity(RowWise, l)
	want := []float64{0.3, 0.3, 0.8, 0.8}
	for i := range p.Values {
		if math.Abs(p.Values[i]-want[i]) > 1e-9 {
			t.Errorf("row proj[%d] = %v, want %v", i, p.Values[i], want[i])
		}
	}
}

func TestProjectGranularityPhaseCircular(t *testing.T) {
	// Circular mean of {355°, 5°} is 0°, not 180° — the arithmetic mean trap.
	l := Layout{Rows: 2, Cols: 1, PitchU: 1, PitchV: 1}
	a, b := 355*math.Pi/180, 5*math.Pi/180
	c := Config{Property: Phase, Values: []float64{a, b}}
	p := c.ProjectGranularity(ColumnWise, l)
	if got := p.Values[0]; math.Min(got, 2*math.Pi-got) > 1e-9 {
		t.Errorf("circular mean = %v rad, want ≈0", got)
	}
}

func TestProjectGranularityIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	l := Layout{Rows: 4, Cols: 6, PitchU: 1, PitchV: 1}
	for _, g := range []Granularity{ElementWise, ColumnWise, RowWise} {
		vals := make([]float64, l.NumElements())
		for i := range vals {
			vals[i] = r.Float64() * 2 * math.Pi
		}
		c := Config{Property: Phase, Values: vals}
		p1 := c.ProjectGranularity(g, l)
		p2 := p1.ProjectGranularity(g, l)
		for i := range p1.Values {
			if math.Abs(p1.Values[i]-p2.Values[i]) > 1e-9 {
				t.Errorf("granularity %v not idempotent at %d: %v vs %v", g, i, p1.Values[i], p2.Values[i])
			}
		}
	}
}

func TestSteeringConfigCoherence(t *testing.T) {
	// After applying the steering config, all element path phases must be
	// equal mod 2π: prop phase -k·d plus element shift +k·d ≡ 0.
	s := testSurface(t, 4, 8)
	src := geom.V(1, -3, 1.5)
	dst := geom.V(-2, -4, 1.0)
	cfg := s.SteeringConfig(src, dst, em.Band24G)
	k := em.Wavenumber(em.Band24G)
	for i, p := range s.ElementPositions() {
		d := src.Dist(p) + p.Dist(dst)
		total := math.Mod(-k*d+cfg.Values[i], 2*math.Pi)
		// total should be ≈ 0 mod 2π.
		if math.Min(math.Abs(total), 2*math.Pi-math.Abs(total)) > 1e-6 {
			t.Fatalf("element %d residual phase %v", i, total)
		}
	}
}

func TestOffConfig(t *testing.T) {
	s := testSurface(t, 2, 2)
	off := s.Off()
	if err := off.Validate(s.Layout); err != nil {
		t.Fatal(err)
	}
	for _, v := range off.Values {
		if v != 0 {
			t.Error("off config not all-zero")
		}
	}
}

func TestCodebook(t *testing.T) {
	s := testSurface(t, 2, 2)
	var cb Codebook
	i0 := cb.Add("off", s.Off())
	i1 := cb.Add("beam1", Config{Property: Phase, Values: []float64{1, 2, 3, 4}})
	if i0 != 0 || i1 != 1 || cb.Len() != 2 {
		t.Fatalf("codebook indices %d,%d len %d", i0, i1, cb.Len())
	}
	e, err := cb.At(1)
	if err != nil || e.Values[2] != 3 {
		t.Errorf("At(1) = %v, %v", e, err)
	}
	if _, err := cb.At(5); err == nil {
		t.Error("out-of-range index accepted")
	}
	// Entries are copies: mutating the source must not change the codebook.
	src := Config{Property: Phase, Values: []float64{9, 9, 9, 9}}
	cb.Add("x", src)
	src.Values[0] = 0
	e2, _ := cb.At(2)
	if e2.Values[0] != 9 {
		t.Error("codebook entry aliases caller slice")
	}
}

func TestAreaM2(t *testing.T) {
	s := testSurface(t, 10, 20)
	want := 10 * 20 * 0.00625 * 0.00625
	if math.Abs(s.AreaM2()-want) > 1e-12 {
		t.Errorf("area = %v, want %v", s.AreaM2(), want)
	}
}

func TestStringers(t *testing.T) {
	if Phase.String() != "phase" || Amplitude.String() != "amplitude" {
		t.Error("property names wrong")
	}
	if ElementWise.String() != "element-wise" || FixedPattern.String() != "fixed" {
		t.Error("granularity names wrong")
	}
	if ControlProperty(200).String() == "" || Granularity(200).String() == "" || OpMode(99).String() == "" {
		t.Error("unknown values should still produce strings")
	}
}

func TestSteeringConfigRangeProperty(t *testing.T) {
	// Property: steering configs are always normalized phases in [0, 2π)
	// for any finite endpoint geometry.
	s := testSurface(t, 3, 3)
	f := func(sx, sy, sz, dx, dy, dz float64) bool {
		src := geom.V(math.Mod(sx, 8), math.Mod(sy, 8)+3, math.Mod(sz, 2)+1)
		dst := geom.V(math.Mod(dx, 8), math.Mod(dy, 8)+3, math.Mod(dz, 2)+1)
		cfg := s.SteeringConfig(src, dst, em.Band24G)
		for _, v := range cfg.Values {
			if v < 0 || v >= 2*math.Pi || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
