package telemetry

import (
	"sort"
	"sync"
)

// Policy names a subscriber's backpressure behavior — what happens when
// events arrive faster than the subscriber drains them. The publisher
// never blocks under any policy; the policies differ in *which* value is
// sacrificed.
type Policy string

const (
	// DropNewest discards the incoming value when the subscriber's channel
	// buffer is full — the classic "stale telemetry is worthless" behavior
	// and the default for plain Subscribe. Delivery is synchronous: the
	// value is in the channel before Publish returns, which journal writers
	// and deterministic experiments rely on.
	DropNewest Policy = "drop-newest"
	// DropOldest queues values in a per-subscriber ring and, when the ring
	// is full, evicts the oldest undelivered value to admit the new one.
	// A lagging watcher sees the freshest window of history rather than a
	// frozen prefix. Delivery is asynchronous via a pump goroutine.
	DropOldest Policy = "drop-oldest"
	// Coalesce keeps at most one queued value per key (see SubOptions.Key),
	// replacing the stale value in place when a newer one for the same key
	// arrives. Built for health watchers: only a device's latest state
	// matters, never the intermediate flaps. Asynchronous like DropOldest.
	Coalesce Policy = "coalesce"
)

// SubOptions configures a named subscription.
type SubOptions[T any] struct {
	// Name attributes drops and deliveries to this subscriber in Stats()
	// and the metrics surface. Empty names render as "anonymous".
	Name string
	// Buffer is the channel buffer (DropNewest) or ring capacity
	// (DropOldest/Coalesce). Defaults to 16 when <= 0.
	Buffer int
	// Policy picks the backpressure behavior; empty means DropNewest.
	Policy Policy
	// Key derives the coalescing key (Coalesce only). Nil coalesces all
	// values into a single latest-wins slot.
	Key func(T) string
	// Filter, when non-nil, admits only values it returns true for —
	// evaluated on the publisher's goroutine, so keep it cheap.
	Filter func(T) bool
}

// SubStats is one subscriber's delivery accounting.
type SubStats struct {
	Name      string
	Policy    Policy
	Delivered uint64
	Dropped   uint64
	// Queued is the instantaneous undelivered backlog (ring policies only;
	// DropNewest backlog lives in the channel buffer and is not visible).
	Queued int
}

// subscriber is one registered consumer. Ring-policy subscribers own a
// pump goroutine moving queue head → channel; DropNewest subscribers are
// plain buffered channels written synchronously from publish.
type subscriber[T any] struct {
	id     int
	name   string
	policy Policy
	buffer int
	key    func(T) string
	filter func(T) bool

	ch   chan T
	done chan struct{} // closed by cancel; stops the pump
	wake chan struct{} // cap-1 doorbell from publish to pump

	// Guarded by the owning bus's mutex.
	queue     []T // undelivered backlog (ring policies)
	delivered uint64
	dropped   uint64
	closed    bool
}

// bus is the generic fan-out publish/subscribe core shared by the report
// bus and the task-event bus. Slow subscribers shed load per their policy
// (never block the publisher): telemetry is advisory, freshest-wins.
type bus[T any] struct {
	mu   sync.Mutex
	subs map[int]*subscriber[T]
	next int
	// detachedDrops accumulates the drop counts of cancelled subscribers
	// so the aggregate Dropped() stays monotonic across subscriber churn.
	detachedDrops uint64
}

// subscribe registers a legacy synchronous drop-newest subscriber.
func (b *bus[T]) subscribe(buffer int) (<-chan T, func()) {
	return b.subscribeOpts(SubOptions[T]{Buffer: buffer, Policy: DropNewest})
}

// subscribeOpts registers a subscriber with explicit options. The returned
// cancel function unsubscribes and (eventually, for ring policies) closes
// the channel.
func (b *bus[T]) subscribeOpts(o SubOptions[T]) (<-chan T, func()) {
	if o.Buffer <= 0 {
		o.Buffer = 16
	}
	if o.Policy == "" {
		o.Policy = DropNewest
	}
	s := &subscriber[T]{
		name:   o.Name,
		policy: o.Policy,
		buffer: o.Buffer,
		key:    o.Key,
		filter: o.Filter,
		done:   make(chan struct{}),
		wake:   make(chan struct{}, 1),
	}
	if o.Policy == DropNewest {
		s.ch = make(chan T, o.Buffer)
	} else {
		// The ring absorbs bursts; the channel is a cap-1 handoff so the
		// ring's eviction choice, not channel buffering, decides what a
		// lagging subscriber sees.
		s.ch = make(chan T, 1)
	}

	b.mu.Lock()
	if b.subs == nil {
		b.subs = make(map[int]*subscriber[T])
	}
	s.id = b.next
	b.next++
	b.subs[s.id] = s
	b.mu.Unlock()

	if s.policy != DropNewest {
		go b.pump(s)
	}

	cancel := func() {
		b.mu.Lock()
		if s.closed {
			b.mu.Unlock()
			return
		}
		s.closed = true
		delete(b.subs, s.id)
		b.detachedDrops += s.dropped
		b.mu.Unlock()
		close(s.done)
		if s.policy == DropNewest {
			close(s.ch)
		}
	}
	return s.ch, cancel
}

// publish delivers a value to every subscriber per its policy. Never
// blocks.
func (b *bus[T]) publish(v T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range b.subs {
		if s.filter != nil && !s.filter(v) {
			continue
		}
		switch s.policy {
		case DropNewest:
			select {
			case s.ch <- v:
				s.delivered++
			default: // drop: stale telemetry is worthless
				s.dropped++
			}
		case Coalesce:
			k := ""
			if s.key != nil {
				k = s.key(v)
			}
			replaced := false
			for i := range s.queue {
				qk := ""
				if s.key != nil {
					qk = s.key(s.queue[i])
				}
				if qk == k {
					s.queue[i] = v
					s.dropped++ // the superseded value was shed
					replaced = true
					break
				}
			}
			if !replaced {
				if len(s.queue) >= s.buffer {
					copy(s.queue, s.queue[1:])
					s.queue = s.queue[:len(s.queue)-1]
					s.dropped++
				}
				s.queue = append(s.queue, v)
			}
			ring(s)
		case DropOldest:
			if len(s.queue) >= s.buffer {
				copy(s.queue, s.queue[1:])
				s.queue = s.queue[:len(s.queue)-1]
				s.dropped++
			}
			s.queue = append(s.queue, v)
			ring(s)
		}
	}
}

// ring taps the subscriber's doorbell without blocking.
func ring[T any](s *subscriber[T]) {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pump moves a ring subscriber's backlog into its channel, one value at a
// time. Blocking on the channel send is safe: the publisher only appends
// to the queue (shedding per policy), never waits for the pump.
func (b *bus[T]) pump(s *subscriber[T]) {
	defer close(s.ch)
	for {
		select {
		case <-s.wake:
		case <-s.done:
			return
		}
		for {
			b.mu.Lock()
			if len(s.queue) == 0 {
				b.mu.Unlock()
				break
			}
			v := s.queue[0]
			s.queue[0] = *new(T) // drop the reference for GC
			s.queue = s.queue[1:]
			if len(s.queue) == 0 {
				s.queue = nil // let a drained backlog free its array
			}
			// Counted at dequeue so Queued==0 implies the accounting is
			// settled; the handoff below only fails on cancel.
			s.delivered++
			b.mu.Unlock()
			select {
			case s.ch <- v:
			case <-s.done:
				return
			}
		}
	}
}

// droppedCount returns the monotonic total of values shed across all
// subscribers, including ones that have since cancelled.
func (b *bus[T]) droppedCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := b.detachedDrops
	for _, s := range b.subs {
		total += s.dropped
	}
	return total
}

// subscribers returns the current subscriber count.
func (b *bus[T]) subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// stats snapshots per-subscriber accounting, ordered by name then
// registration for deterministic rendering.
func (b *bus[T]) stats() []SubStats {
	b.mu.Lock()
	out := make([]SubStats, 0, len(b.subs))
	ids := make([]int, 0, len(b.subs))
	for id := range b.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := b.subs[id]
		name := s.name
		if name == "" {
			name = "anonymous"
		}
		out = append(out, SubStats{
			Name:      name,
			Policy:    s.policy,
			Delivered: s.delivered,
			Dropped:   s.dropped,
			Queued:    len(s.queue),
		})
	}
	b.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
