package telemetry

import "sync"

// bus is the generic fan-out publish/subscribe core shared by the report
// bus and the task-event bus. Slow subscribers drop (never block the
// publisher): telemetry is advisory, freshest-wins.
type bus[T any] struct {
	mu   sync.Mutex
	subs map[int]chan T
	next int
	// dropped counts values discarded because a subscriber's buffer was
	// full. Drops are by design, but invisible drops hide overload — the
	// counter makes backpressure observable.
	dropped uint64
}

// subscribe registers a subscriber with the given channel buffer. The
// returned cancel function unsubscribes and closes the channel.
func (b *bus[T]) subscribe(buffer int) (<-chan T, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.subs == nil {
		b.subs = make(map[int]chan T)
	}
	id := b.next
	b.next++
	ch := make(chan T, buffer)
	b.subs[id] = ch
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if c, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(c)
		}
	}
	return ch, cancel
}

// publish delivers a value to every subscriber, dropping for any whose
// buffer is full.
func (b *bus[T]) publish(v T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ch := range b.subs {
		select {
		case ch <- v:
		default: // drop: stale telemetry is worthless
			b.dropped++
		}
	}
}

// droppedCount returns how many values have been dropped on full buffers.
func (b *bus[T]) droppedCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// subscribers returns the current subscriber count.
func (b *bus[T]) subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}
