package telemetry

import (
	"testing"
	"time"
)

// recv pulls one event or fails the test after a timeout.
func recv(t *testing.T, ch <-chan TaskEvent) TaskEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("channel closed")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for event")
	}
	panic("unreachable")
}

// waitDrained polls until the named subscriber's backlog is empty.
func waitDrained(t *testing.T, b *EventBus, name string) SubStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, st := range b.Stats() {
			if st.Name == name && st.Queued == 0 {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber %q never drained: %+v", name, b.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDropOldestKeepsFreshestWindow(t *testing.T) {
	b := NewEventBus()
	ch, cancel := b.SubscribeOpts(SubOptions[TaskEvent]{
		Name: "lagger", Buffer: 3, Policy: DropOldest,
	})
	defer cancel()

	// Nobody reads yet: publish a burst far beyond the ring. The cap-1
	// handoff channel may hold the very first event (the pump races the
	// burst), but the ring behind it keeps only the freshest 3.
	for i := 1; i <= 10; i++ {
		b.Publish(TaskEvent{TaskID: i})
	}
	var got []int
	deadline := time.After(5 * time.Second)
	for len(got) == 0 || got[len(got)-1] != 10 {
		select {
		case ev := <-ch:
			got = append(got, ev.TaskID)
		case <-deadline:
			t.Fatalf("never saw the newest event; got %v", got)
		}
	}
	if len(got) > 5 {
		t.Fatalf("drop-oldest delivered %d of 10 events (%v), want a bounded freshest window", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	st := waitDrained(t, b, "lagger")
	if st.Dropped == 0 {
		t.Fatal("expected drops attributed to the lagging subscriber")
	}
	if st.Delivered != uint64(len(got)) {
		t.Fatalf("delivered = %d, received %d", st.Delivered, len(got))
	}
}

func TestCoalesceKeepsLatestPerKey(t *testing.T) {
	b := NewEventBus()
	ch, cancel := b.SubscribeOpts(SubOptions[TaskEvent]{
		Name: "health", Buffer: 8, Policy: Coalesce,
		Key: func(ev TaskEvent) string { return ev.DeviceID },
	})
	defer cancel()

	// Flap one device many times while another changes once; a slow
	// watcher must see each device's latest state, not the flaps.
	b.Publish(TaskEvent{DeviceID: "rm-a", State: DeviceDegraded})
	for i := 0; i < 50; i++ {
		b.Publish(TaskEvent{DeviceID: "rm-b", State: DeviceDead})
		b.Publish(TaskEvent{DeviceID: "rm-b", State: DeviceRecovered})
	}
	seen := map[string]string{}
	for len(seen) < 2 {
		ev := recv(t, ch)
		seen[ev.DeviceID] = ev.State
	}
	st := waitDrained(t, b, "health")
	if seen["rm-b"] != DeviceRecovered {
		t.Fatalf("rm-b final state = %q, want %q", seen["rm-b"], DeviceRecovered)
	}
	if st.Dropped == 0 {
		t.Fatal("coalescing superseded states should count as shed")
	}
	// Drain anything in flight, then confirm quiescence: at most one
	// stale rm-b could have been handed off before coalescing kicked in.
	for extra := 0; ; extra++ {
		select {
		case ev := <-ch:
			if extra > 2 {
				t.Fatalf("too many residual events, got %+v", ev)
			}
		case <-time.After(50 * time.Millisecond):
			return
		}
	}
}

func TestSubscriberFilter(t *testing.T) {
	b := NewEventBus()
	ch, cancel := b.SubscribeOpts(SubOptions[TaskEvent]{
		Name: "failures-only", Buffer: 8, Policy: DropOldest,
		Filter: func(ev TaskEvent) bool { return ev.State == TaskFailed },
	})
	defer cancel()
	b.Publish(TaskEvent{TaskID: 1, State: TaskRunning})
	b.Publish(TaskEvent{TaskID: 2, State: TaskFailed})
	b.Publish(TaskEvent{TaskID: 3, State: TaskDone})
	if ev := recv(t, ch); ev.TaskID != 2 {
		t.Fatalf("filter leaked task %d", ev.TaskID)
	}
	st := waitDrained(t, b, "failures-only")
	if st.Delivered != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want delivered=1 dropped=0 (filtered events are not drops)", st)
	}
}

func TestAggregateDroppedMonotonicAcrossCancel(t *testing.T) {
	b := NewEventBus()
	_, cancel := b.SubscribeOpts(SubOptions[TaskEvent]{Name: "tiny", Buffer: 1, Policy: DropNewest})
	b.Publish(TaskEvent{TaskID: 1})
	b.Publish(TaskEvent{TaskID: 2})
	b.Publish(TaskEvent{TaskID: 3})
	before := b.Dropped()
	if before != 2 {
		t.Fatalf("dropped = %d, want 2", before)
	}
	cancel()
	if after := b.Dropped(); after != before {
		t.Fatalf("aggregate dropped went %d -> %d on cancel; must stay monotonic", before, after)
	}
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("subscribers = %d after cancel", n)
	}
}

func TestStatsNamesAndOrder(t *testing.T) {
	b := NewEventBus()
	_, c1 := b.SubscribeOpts(SubOptions[TaskEvent]{Name: "zeta", Policy: DropOldest})
	_, c2 := b.Subscribe(4) // legacy anonymous
	_, c3 := b.SubscribeOpts(SubOptions[TaskEvent]{Name: "alpha", Policy: Coalesce})
	defer c1()
	defer c2()
	defer c3()
	st := b.Stats()
	if len(st) != 3 {
		t.Fatalf("stats len = %d", len(st))
	}
	if st[0].Name != "alpha" || st[1].Name != "anonymous" || st[2].Name != "zeta" {
		t.Fatalf("stats order = %q %q %q", st[0].Name, st[1].Name, st[2].Name)
	}
	if st[1].Policy != DropNewest {
		t.Fatalf("legacy Subscribe policy = %q", st[1].Policy)
	}
}

func TestRingChannelClosesAfterCancel(t *testing.T) {
	b := NewEventBus()
	ch, cancel := b.SubscribeOpts(SubOptions[TaskEvent]{Name: "w", Buffer: 4, Policy: DropOldest})
	b.Publish(TaskEvent{TaskID: 1})
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("channel never closed after cancel")
		}
	}
}
