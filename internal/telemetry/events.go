package telemetry

import "time"

// Task lifecycle phases published on the event bus. They mirror the
// orchestrator's task states, plus the transient "submitted"/"scheduled"
// markers emitted while a task moves through the pipeline.
const (
	TaskSubmitted = "submitted" // task accepted into the table
	TaskScheduled = "scheduled" // task placed into a committed plan
	TaskRunning   = "running"   // configurations applied, result available
	TaskIdle      = "idle"      // parked, hardware released
	TaskResumed   = "resumed"   // un-parked, awaiting reschedule
	TaskDone      = "done"      // completed or explicitly ended
	TaskFailed    = "failed"    // unschedulable or errored
	TaskMigrated  = "migrated"  // moved to a different interference-domain shard
	TaskHandoff   = "handoff"   // a moving endpoint crossed a domain boundary; re-homed live
)

// Device health phases share the task-event bus (TaskID 0, DeviceID set)
// so one `surfctl tasks --watch` stream shows tasks and the healing that
// reshuffles them.
const (
	DeviceDegraded  = "device_degraded"  // stuck elements or repeated control failures
	DeviceDead      = "device_dead"      // heartbeat lost; excluded from planning
	DeviceRecovered = "device_recovered" // heartbeat back; re-included
	Replanned       = "replanned"        // orchestrator re-planned around a health change
)

// Control-plane infrastructure events (TaskID 0, DeviceID empty).
const (
	// JournalFailed is published once when the durability journal hits its
	// first (sticky) write error: new tasks are no longer durable. Err
	// carries the write error text.
	JournalFailed = "journal_failed"
	// Promoted is published once when a standby takes over leadership
	// after the primary's lease expired. Metric carries the new epoch.
	Promoted = "promoted"
)

// TaskEvent is one task lifecycle transition. Events are advisory — the
// orchestrator's task table remains the source of truth — so consumers
// (monitors, CLIs, loggers) may drop or lag without affecting scheduling.
type TaskEvent struct {
	Time   time.Time
	TaskID int
	Kind   string // service kind name ("link", "coverage", ...)
	State  string // one of the Task* phase constants above
	FreqHz float64

	// Endpoint is the served endpoint/device name when the goal names one
	// ("" otherwise). Monitors key expectations on it.
	Endpoint string

	// Plan placement, populated for scheduled/running events.
	Strategy string
	Surfaces []string
	Share    float64

	// Result metrics, populated for running events.
	Metric     float64
	MetricName string

	// Err carries the failure reason text for failed events.
	Err string

	// Spec is the task's durable submission spec (the orchestrator's
	// TaskSpec JSON), attached to submitted events only. Journals persist
	// it so a restarted control plane can re-admit the task; other
	// consumers may ignore it.
	Spec []byte

	// DeviceID names the surface for device health events (Device* and
	// Replanned states); empty for plain task lifecycle events.
	DeviceID string

	// Tenant is the submitting tenant ("default" unless multi-tenant
	// admission control is in use).
	Tenant string
	// Domain is the interference-domain shard owning the task when the
	// event was emitted (0 in single-domain scenes).
	Domain int
}

// EventBus is a fan-out publish/subscribe channel for task lifecycle
// events, with the same drop-on-full semantics as the report Bus.
type EventBus struct {
	core bus[TaskEvent]
}

// NewEventBus creates an empty task-event bus.
func NewEventBus() *EventBus { return &EventBus{} }

// Subscribe registers a synchronous drop-newest subscriber with the given
// channel buffer. The returned cancel function unsubscribes and closes the
// channel.
func (b *EventBus) Subscribe(buffer int) (<-chan TaskEvent, func()) {
	return b.core.subscribe(buffer)
}

// SubscribeOpts registers a named subscriber with an explicit backpressure
// policy. The returned cancel function unsubscribes; the channel closes
// once the subscription has fully shut down.
func (b *EventBus) SubscribeOpts(o SubOptions[TaskEvent]) (<-chan TaskEvent, func()) {
	return b.core.subscribeOpts(o)
}

// Stats snapshots per-subscriber delivery and drop accounting.
func (b *EventBus) Stats() []SubStats { return b.core.stats() }

// Publish delivers an event to every subscriber, dropping for any whose
// buffer is full.
func (b *EventBus) Publish(ev TaskEvent) { b.core.publish(ev) }

// Subscribers returns the current subscriber count.
func (b *EventBus) Subscribers() int { return b.core.subscribers() }

// Dropped returns how many events were discarded on full subscriber
// buffers since the bus was created.
func (b *EventBus) Dropped() uint64 { return b.core.droppedCount() }
