package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestEventBusFanOut(t *testing.T) {
	b := NewEventBus()
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("fresh bus subscribers = %d", n)
	}
	ch1, cancel1 := b.Subscribe(4)
	ch2, cancel2 := b.Subscribe(4)
	defer cancel2()
	if n := b.Subscribers(); n != 2 {
		t.Fatalf("subscribers = %d, want 2", n)
	}

	ev := TaskEvent{Time: time.Unix(10, 0), TaskID: 7, Kind: "link", State: TaskRunning, Endpoint: "laptop", Metric: 21.5, MetricName: "snr_db"}
	b.Publish(ev)
	for i, ch := range []<-chan TaskEvent{ch1, ch2} {
		select {
		case got := <-ch:
			if got.TaskID != ev.TaskID || got.State != ev.State || got.Endpoint != ev.Endpoint || got.Metric != ev.Metric {
				t.Errorf("subscriber %d got %+v", i, got)
			}
		case <-time.After(time.Second):
			t.Fatalf("subscriber %d got nothing", i)
		}
	}

	cancel1()
	cancel1() // idempotent
	if n := b.Subscribers(); n != 1 {
		t.Fatalf("subscribers after cancel = %d, want 1", n)
	}
	if _, ok := <-ch1; ok {
		t.Error("cancelled channel still open")
	}
	b.Publish(TaskEvent{TaskID: 8, State: TaskDone})
	if got := <-ch2; got.TaskID != 8 || got.State != TaskDone {
		t.Errorf("surviving subscriber got %+v", got)
	}
}

func TestEventBusDropsWhenFull(t *testing.T) {
	b := NewEventBus()
	ch, cancel := b.Subscribe(2)
	defer cancel()
	for i := 0; i < 5; i++ {
		b.Publish(TaskEvent{TaskID: i}) // must not block past the buffer
	}
	if got := <-ch; got.TaskID != 0 {
		t.Errorf("first delivered = %d, want 0", got.TaskID)
	}
	if got := <-ch; got.TaskID != 1 {
		t.Errorf("second delivered = %d, want 1", got.TaskID)
	}
	select {
	case ev := <-ch:
		t.Errorf("overflow event delivered: %+v", ev)
	default:
	}
}

func TestEventBusConcurrentPublish(t *testing.T) {
	b := NewEventBus()
	ch, cancel := b.Subscribe(1024)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Publish(TaskEvent{TaskID: p*100 + i, State: TaskSubmitted})
			}
		}(p)
	}
	wg.Wait()
	cancel()
	n := 0
	for range ch {
		n++
	}
	if n != 800 {
		t.Errorf("delivered %d events, want 800", n)
	}
}

func TestBusDropCounter(t *testing.T) {
	b := NewEventBus()
	if b.Dropped() != 0 {
		t.Fatal("fresh bus should report zero drops")
	}
	_, cancel := b.Subscribe(1)
	defer cancel()
	b.Publish(TaskEvent{State: TaskRunning})
	b.Publish(TaskEvent{State: TaskRunning}) // buffer full: dropped
	b.Publish(TaskEvent{State: TaskRunning}) // dropped
	if got := b.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}

	rb := NewBus()
	_, rcancel := rb.Subscribe(1)
	defer rcancel()
	rb.Publish(Report{})
	rb.Publish(Report{})
	if got := rb.Dropped(); got != 1 {
		t.Fatalf("report bus Dropped() = %d, want 1", got)
	}
}
