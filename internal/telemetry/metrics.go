package telemetry

import "surfos/internal/metrics"

// RegisterMetrics exposes the event bus's fan-out accounting on a metrics
// registry: per-subscriber delivered/dropped counters and backlog depth
// (labelled by subscriber name and policy), plus the aggregate subscriber
// count and monotonic drop total.
func (b *EventBus) RegisterMetrics(r *metrics.Registry) {
	r.GaugeFunc("surfos_bus_subscribers", "Current event-bus subscriber count.",
		func() float64 { return float64(b.Subscribers()) })
	r.CounterFunc("surfos_bus_dropped_total", "Events shed across all subscribers, including cancelled ones.",
		func() float64 { return float64(b.Dropped()) })
	r.RegisterCollector(func() []metrics.Family {
		deliveredF := metrics.Family{Name: "surfos_bus_subscriber_delivered_total", Help: "Events delivered to subscribers with this name.", Type: "counter"}
		droppedF := metrics.Family{Name: "surfos_bus_subscriber_dropped_total", Help: "Events shed for subscribers with this name per their backpressure policy.", Type: "counter"}
		queuedF := metrics.Family{Name: "surfos_bus_subscriber_backlog", Help: "Undelivered events queued for subscribers with this name.", Type: "gauge"}
		// Many subscribers can share a name (every watch stream of one kind
		// does); aggregate per (name, policy) so each label set appears once.
		type agg struct{ delivered, dropped, queued uint64 }
		sums := map[[2]string]*agg{}
		var order [][2]string
		for _, st := range b.Stats() {
			k := [2]string{st.Name, string(st.Policy)}
			a, ok := sums[k]
			if !ok {
				a = &agg{}
				sums[k] = a
				order = append(order, k)
			}
			a.delivered += st.Delivered
			a.dropped += st.Dropped
			a.queued += uint64(st.Queued)
		}
		for _, k := range order {
			lbl := []metrics.Label{{Name: "subscriber", Value: k[0]}, {Name: "policy", Value: k[1]}}
			a := sums[k]
			deliveredF.Samples = append(deliveredF.Samples, metrics.Sample{Labels: lbl, Value: float64(a.delivered)})
			droppedF.Samples = append(droppedF.Samples, metrics.Sample{Labels: lbl, Value: float64(a.dropped)})
			queuedF.Samples = append(queuedF.Samples, metrics.Sample{Labels: lbl, Value: float64(a.queued)})
		}
		return []metrics.Family{deliveredF, droppedF, queuedF}
	})
}
