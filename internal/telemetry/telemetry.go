// Package telemetry carries endpoint feedback through SurfOS: link-quality
// reports flowing from clients/APs to the hardware manager and
// orchestrator. The paper's architecture depends on this loop — surfaces
// "react locally to choose the best configuration" from endpoint feedback,
// and the orchestrator captures environmental dynamics "through wireless
// channel simulations or endpoint feedback" (§3.1–3.2).
package telemetry

import (
	"sync"
	"time"
)

// Report is one endpoint feedback sample.
type Report struct {
	DeviceID   string // surface the endpoint was served through ("" = none)
	EndpointID string
	ConfigIdx  int // codebook entry active during the sample (-1 unknown)
	SNRdB      float64
	Time       time.Time
}

// Bus is a fan-out publish/subscribe channel for reports. Slow subscribers
// drop (never block the publisher): feedback is advisory, freshest-wins.
type Bus struct {
	core bus[Report]
}

// NewBus creates an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers a synchronous drop-newest subscriber with the given
// channel buffer. The returned cancel function unsubscribes and closes the
// channel.
func (b *Bus) Subscribe(buffer int) (<-chan Report, func()) {
	return b.core.subscribe(buffer)
}

// SubscribeOpts registers a named subscriber with an explicit backpressure
// policy. The returned cancel function unsubscribes; the channel closes
// once the subscription has fully shut down.
func (b *Bus) SubscribeOpts(o SubOptions[Report]) (<-chan Report, func()) {
	return b.core.subscribeOpts(o)
}

// Stats snapshots per-subscriber delivery and drop accounting.
func (b *Bus) Stats() []SubStats { return b.core.stats() }

// Publish delivers a report to every subscriber, dropping for any whose
// buffer is full.
func (b *Bus) Publish(r Report) { b.core.publish(r) }

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int { return b.core.subscribers() }

// Dropped returns how many reports were discarded on full subscriber
// buffers since the bus was created.
func (b *Bus) Dropped() uint64 { return b.core.droppedCount() }

// Aggregator maintains exponentially-weighted link metrics per (device,
// codebook entry) so devices can adapt to the best stored configuration.
type Aggregator struct {
	// Alpha is the EWMA weight of a new sample (default 0.3).
	Alpha float64

	mu    sync.Mutex
	ewma  map[string]map[int]float64
	count map[string]int
}

// NewAggregator creates an aggregator with the default smoothing.
func NewAggregator() *Aggregator {
	return &Aggregator{
		Alpha: 0.3,
		ewma:  make(map[string]map[int]float64),
		count: make(map[string]int),
	}
}

// Observe folds a report into the per-entry statistics.
func (a *Aggregator) Observe(r Report) {
	if r.DeviceID == "" || r.ConfigIdx < 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	per, ok := a.ewma[r.DeviceID]
	if !ok {
		per = make(map[int]float64)
		a.ewma[r.DeviceID] = per
	}
	if old, seen := per[r.ConfigIdx]; seen {
		per[r.ConfigIdx] = old + a.Alpha*(r.SNRdB-old)
	} else {
		per[r.ConfigIdx] = r.SNRdB
	}
	a.count[r.DeviceID]++
}

// Best returns the codebook entry with the highest smoothed metric for a
// device, or ok=false if no feedback has been seen.
func (a *Aggregator) Best(deviceID string) (idx int, snr float64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	per, seen := a.ewma[deviceID]
	if !seen || len(per) == 0 {
		return 0, 0, false
	}
	first := true
	for i, v := range per {
		if first || v > snr || (v == snr && i < idx) {
			idx, snr = i, v
			first = false
		}
	}
	return idx, snr, true
}

// Metrics returns a dense metric-per-entry slice of length n for a device,
// filling entries without feedback with the given floor value.
func (a *Aggregator) Metrics(deviceID string, n int, floor float64) []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]float64, n)
	for i := range out {
		out[i] = floor
	}
	for i, v := range a.ewma[deviceID] {
		if i >= 0 && i < n {
			out[i] = v
		}
	}
	return out
}

// Samples returns how many reports a device has accumulated.
func (a *Aggregator) Samples(deviceID string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.count[deviceID]
}
