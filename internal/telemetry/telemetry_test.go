package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestBusFanOut(t *testing.T) {
	b := NewBus()
	ch1, cancel1 := b.Subscribe(4)
	ch2, cancel2 := b.Subscribe(4)
	defer cancel2()

	r := Report{DeviceID: "s1", EndpointID: "e1", ConfigIdx: 0, SNRdB: 20}
	b.Publish(r)

	got1 := <-ch1
	got2 := <-ch2
	if got1 != r || got2 != r {
		t.Errorf("fan-out mismatch: %v %v", got1, got2)
	}
	if b.Subscribers() != 2 {
		t.Errorf("subscribers = %d", b.Subscribers())
	}
	cancel1()
	if b.Subscribers() != 1 {
		t.Errorf("after cancel = %d", b.Subscribers())
	}
	// Cancelled channel is closed.
	if _, open := <-ch1; open {
		t.Error("cancelled channel not closed")
	}
	// Double cancel is safe.
	cancel1()
}

func TestBusDropsWhenFull(t *testing.T) {
	b := NewBus()
	ch, cancel := b.Subscribe(1)
	defer cancel()
	b.Publish(Report{SNRdB: 1})
	b.Publish(Report{SNRdB: 2}) // dropped, buffer full
	first := <-ch
	if first.SNRdB != 1 {
		t.Errorf("got %v", first)
	}
	select {
	case r := <-ch:
		t.Errorf("unexpected second report %v", r)
	default:
	}
}

func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus()
	ch, cancel := b.Subscribe(1000)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Publish(Report{DeviceID: "d", ConfigIdx: 0, SNRdB: float64(j)})
			}
		}()
	}
	wg.Wait()
	if got := len(ch); got != 1000 {
		t.Errorf("received %d reports, want 1000", got)
	}
}

func TestAggregatorBest(t *testing.T) {
	a := NewAggregator()
	now := time.Now()
	a.Observe(Report{DeviceID: "s1", ConfigIdx: 0, SNRdB: 10, Time: now})
	a.Observe(Report{DeviceID: "s1", ConfigIdx: 1, SNRdB: 25, Time: now})
	a.Observe(Report{DeviceID: "s1", ConfigIdx: 2, SNRdB: 18, Time: now})

	idx, snr, ok := a.Best("s1")
	if !ok || idx != 1 || snr != 25 {
		t.Errorf("best = %d %v %v", idx, snr, ok)
	}
	if _, _, ok := a.Best("unknown"); ok {
		t.Error("unknown device reported feedback")
	}
	if a.Samples("s1") != 3 {
		t.Errorf("samples = %d", a.Samples("s1"))
	}
}

func TestAggregatorEWMA(t *testing.T) {
	a := NewAggregator()
	a.Alpha = 0.5
	a.Observe(Report{DeviceID: "d", ConfigIdx: 0, SNRdB: 10})
	a.Observe(Report{DeviceID: "d", ConfigIdx: 0, SNRdB: 20})
	// EWMA: 10 + 0.5·(20-10) = 15.
	_, snr, ok := a.Best("d")
	if !ok || snr != 15 {
		t.Errorf("ewma = %v %v, want 15", snr, ok)
	}
}

func TestAggregatorIgnoresUnattributed(t *testing.T) {
	a := NewAggregator()
	a.Observe(Report{DeviceID: "", ConfigIdx: 0, SNRdB: 10})
	a.Observe(Report{DeviceID: "d", ConfigIdx: -1, SNRdB: 10})
	if _, _, ok := a.Best("d"); ok {
		t.Error("unattributed reports counted")
	}
}

func TestAggregatorMetricsDense(t *testing.T) {
	a := NewAggregator()
	a.Observe(Report{DeviceID: "d", ConfigIdx: 1, SNRdB: 12})
	m := a.Metrics("d", 3, -100)
	if m[0] != -100 || m[1] != 12 || m[2] != -100 {
		t.Errorf("metrics = %v", m)
	}
	// Out-of-range entries are ignored.
	a.Observe(Report{DeviceID: "d", ConfigIdx: 9, SNRdB: 50})
	m = a.Metrics("d", 3, -100)
	if m[0] != -100 || m[2] != -100 {
		t.Errorf("metrics after stray entry = %v", m)
	}
}
