// Package wire is the SurfOS length-prefixed binary framing layer, shared
// by every framed protocol in the system: the southbound control protocol
// (ctrlproto device agents), the framed northbound task API, and — by
// design — any future transport that ships records between control-plane
// processes (WAL shipping for controller failover rides the same frames).
//
// One frame on the wire:
//
//	frame := magic(2) version(1) type(1) stream(4) len(4) payload(len)
//
// All integers are big-endian. The 4-byte stream field is
// protocol-defined: RPC-style protocols use it as a correlation ID echoed
// by the matching reply, streaming protocols use it as a logical stream
// ID so many event streams multiplex over one connection. The layout is
// byte-identical to the original ctrlproto framing, so every existing
// agent, client, and golden byte sequence is unchanged.
package wire

import (
	"encoding/binary"
	"errors"
	"io"
)

// Protocol constants.
const (
	// Magic marks every frame ("SurfOS"). Its first byte, 0x5F, is the
	// sniffing byte dual-mode listeners use to tell framed clients from
	// line-protocol text clients (see MagicByte).
	Magic   uint16 = 0x5F05
	Version byte   = 1
	// MaxPayload bounds a frame's payload; a 512×512-element codebook of 16
	// entries is ~33 MB, so allow 64 MB.
	MaxPayload = 64 << 20
	// HeaderLen is the fixed frame header size.
	HeaderLen = 2 + 1 + 1 + 4 + 4
	// MagicByte is the first byte of every frame. No northbound text
	// command begins with it, so a dual-mode listener can route a
	// connection after reading a single byte.
	MagicByte byte = byte(Magic >> 8)
)

// Framing errors.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrTooLarge   = errors.New("wire: payload exceeds MaxPayload")
)

// Frame is one protocol unit. Type identifies the message to the layered
// protocol; Stream is the correlation or stream ID; Payload is opaque to
// this package.
type Frame struct {
	Type    byte
	Stream  uint32
	Payload []byte
}

// AppendFrame serializes a frame onto buf and returns the extended slice.
func AppendFrame(buf []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return buf, ErrTooLarge
	}
	buf = binary.BigEndian.AppendUint16(buf, Magic)
	buf = append(buf, Version, f.Type)
	buf = binary.BigEndian.AppendUint32(buf, f.Stream)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Payload)))
	return append(buf, f.Payload...), nil
}

// WriteFrame serializes a frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxPayload {
		return ErrTooLarge
	}
	hdr := make([]byte, HeaderLen)
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = f.Type
	binary.BigEndian.PutUint32(hdr[4:8], f.Stream)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(f.Payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	hdr := make([]byte, HeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Frame{}, err
	}
	return readBody(r, hdr)
}

// readBody validates a header and reads the payload it announces.
func readBody(r io.Reader, hdr []byte) (Frame, error) {
	if binary.BigEndian.Uint16(hdr[0:2]) != Magic {
		return Frame{}, ErrBadMagic
	}
	if hdr[2] != Version {
		return Frame{}, ErrBadVersion
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n > MaxPayload {
		return Frame{}, ErrTooLarge
	}
	f := Frame{
		Type:   hdr[3],
		Stream: binary.BigEndian.Uint32(hdr[4:8]),
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// SplitFrame extracts one complete raw frame (header + payload bytes) from
// the head of buf, returning the remainder. ok is false when buf does not
// yet hold a complete frame — including when the announced payload exceeds
// MaxPayload, which can never complete. Fault injectors and stream
// reassemblers share this so "one frame" means the same thing everywhere.
func SplitFrame(buf []byte) (frame, rest []byte, ok bool) {
	if len(buf) < HeaderLen {
		return nil, buf, false
	}
	n := int(binary.BigEndian.Uint32(buf[8:12]))
	total := HeaderLen + n
	if n > MaxPayload || len(buf) < total {
		return nil, buf, false
	}
	return buf[:total:total], buf[total:], true
}
