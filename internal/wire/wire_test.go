package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: 1},
		{Type: 7, Stream: 42, Payload: []byte("hello")},
		{Type: 255, Stream: 0xFFFFFFFF, Payload: bytes.Repeat([]byte{0x5F}, 1024)},
		{Type: 0, Stream: 1, Payload: []byte{}},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame[%d]: %v", i, err)
		}
		if got.Type != want.Type || got.Stream != want.Stream || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after reading all frames", buf.Len())
	}
}

func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	f := Frame{Type: 9, Stream: 1234, Payload: []byte("payload bytes")}
	var w bytes.Buffer
	if err := WriteFrame(&w, f); err != nil {
		t.Fatal(err)
	}
	appended, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Bytes(), appended) {
		t.Fatalf("AppendFrame bytes differ from WriteFrame:\n%x\n%x", appended, w.Bytes())
	}
}

func TestWireLayoutIsPinned(t *testing.T) {
	// The byte layout is a compatibility contract with every deployed agent:
	// magic(2) version(1) type(1) stream(4) len(4) payload.
	b, err := AppendFrame(nil, Frame{Type: 0x0B, Stream: 0x01020304, Payload: []byte{0xAA, 0xBB}})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x5F, 0x05, 0x01, 0x0B, 0x01, 0x02, 0x03, 0x04, 0x00, 0x00, 0x00, 0x02, 0xAA, 0xBB}
	if !bytes.Equal(b, want) {
		t.Fatalf("layout drifted:\n got %x\nwant %x", b, want)
	}
	if MagicByte != 0x5F {
		t.Fatalf("MagicByte = %#x, want 0x5F", MagicByte)
	}
}

func TestReadFrameErrors(t *testing.T) {
	mk := func(mut func(hdr []byte)) io.Reader {
		b, _ := AppendFrame(nil, Frame{Type: 1, Stream: 2, Payload: []byte("x")})
		mut(b)
		return bytes.NewReader(b)
	}
	if _, err := ReadFrame(mk(func(h []byte) { h[0] = 0x00 })); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	if _, err := ReadFrame(mk(func(h []byte) { h[2] = 99 })); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: got %v", err)
	}
	if _, err := ReadFrame(mk(func(h []byte) {
		binary.BigEndian.PutUint32(h[8:12], MaxPayload+1)
	})); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("too large: got %v", err)
	}
	// Truncated header and truncated payload surface as IO errors.
	if _, err := ReadFrame(strings.NewReader("\x5f\x05\x01")); err == nil {
		t.Fatal("truncated header: want error")
	}
	short, _ := AppendFrame(nil, Frame{Type: 1, Payload: []byte("abcdef")})
	if _, err := ReadFrame(bytes.NewReader(short[:len(short)-2])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: got %v", err)
	}
	if err := WriteFrame(io.Discard, Frame{Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize write: got %v", err)
	}
}

func TestSplitFrameIncremental(t *testing.T) {
	a, _ := AppendFrame(nil, Frame{Type: 1, Stream: 10, Payload: []byte("first")})
	b, _ := AppendFrame(nil, Frame{Type: 2, Stream: 20, Payload: []byte("second")})
	stream := append(append([]byte{}, a...), b...)

	// Feed the stream byte by byte; frames must pop out exactly at their
	// completion boundaries, in order.
	var buf []byte
	var got [][]byte
	for _, c := range stream {
		buf = append(buf, c)
		for {
			frame, rest, ok := SplitFrame(buf)
			if !ok {
				break
			}
			got = append(got, frame)
			buf = rest
		}
	}
	if len(buf) != 0 || len(got) != 2 {
		t.Fatalf("got %d frames, %d leftover bytes", len(got), len(buf))
	}
	if !bytes.Equal(got[0], a) || !bytes.Equal(got[1], b) {
		t.Fatal("reassembled frames differ from originals")
	}

	// An announced payload beyond MaxPayload can never complete.
	huge := make([]byte, HeaderLen)
	binary.BigEndian.PutUint16(huge[0:2], Magic)
	huge[2] = Version
	binary.BigEndian.PutUint32(huge[8:12], MaxPayload+1)
	if _, _, ok := SplitFrame(huge); ok {
		t.Fatal("SplitFrame accepted an impossible frame")
	}
}

// FuzzFrame drives both directions of the codec: arbitrary bytes must never
// panic the decoder, and anything that decodes must re-encode to the same
// bytes (given a sane header the codec is bijective).
func FuzzFrame(f *testing.F) {
	seed := func(fr Frame) {
		b, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(Frame{Type: 1})
	seed(Frame{Type: 11, Stream: 7, Payload: []byte("ack")})
	seed(Frame{Type: 20, Stream: 0xDEADBEEF, Payload: bytes.Repeat([]byte{1, 2, 3}, 100)})
	f.Add([]byte{})
	f.Add([]byte{0x5F})
	f.Add([]byte{0x5F, 0x05, 0x01, 0x01, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0x5F, 0x05}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		re, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("round-trip mismatch:\n in %x\nout %x", data[:len(re)], re)
		}
		// SplitFrame must agree with ReadFrame about the frame boundary.
		frame, _, ok := SplitFrame(data)
		if !ok {
			t.Fatal("ReadFrame succeeded but SplitFrame found no frame")
		}
		if !bytes.Equal(frame, re) {
			t.Fatal("SplitFrame boundary disagrees with ReadFrame")
		}
	})
}
