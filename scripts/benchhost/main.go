// benchhost prints the host-metadata block that BENCH_*.json records
// carry, as one JSON object: goos, goarch, CPU model, num_cpu, and
// gomaxprocs. scripts/record-bench.sh runs it so recorded benchmark
// curves are stamped with the machine that produced them.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
)

func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "model name") {
			if i := strings.Index(line, ":"); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return "unknown"
}

func main() {
	out, err := json.Marshal(map[string]any{
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"cpu":        cpuModel(),
		"num_cpu":    runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
