#!/usr/bin/env bash
# golden-check.sh — regression gate for the paper experiments.
#
# Runs the quick experiment profile and diffs it against the committed
# golden output, normalizing only the wall-clock timing strings
# ("(quick profile, 9.886s)" -> "(quick profile, TIME)"). Everything else
# — every table cell, heatmap glyph, and headline metric — must match
# byte for byte: the experiment pipeline is deterministic by design.
#
# Usage: scripts/golden-check.sh [golden-file]
set -euo pipefail
cd "$(dirname "$0")/.."

golden="${1:-docs/surfos-bench-quick.txt}"
[ -f "$golden" ] || { echo "golden-check: missing golden file $golden" >&2; exit 2; }

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go run ./cmd/surfos-bench -profile quick > "$tmp"

normalize() {
    sed -E 's/\(quick profile, [^)]*\)/(quick profile, TIME)/' "$1"
}

if ! diff -u <(normalize "$golden") <(normalize "$tmp"); then
    echo "golden-check: experiment output diverged from $golden" >&2
    echo "golden-check: if the change is intentional, regenerate with:" >&2
    echo "  go run ./cmd/surfos-bench -profile quick > $golden" >&2
    exit 1
fi
echo "golden-check: experiment output matches $golden"
