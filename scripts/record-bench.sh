#!/usr/bin/env bash
# record-bench.sh — run a benchmark selection and emit a JSON record
# stamped with the host metadata the BENCH_*.json files carry (goos,
# goarch, CPU model, num_cpu, gomaxprocs), so recorded curves are always
# interpretable against the machine that produced them.
#
# Usage: scripts/record-bench.sh <bench-regexp> <package> [out.json]
#
#   scripts/record-bench.sh 'BenchmarkParallelSweep' ./internal/optimize/ BENCH_parallel.raw.json
#
# The output is a raw capture: host block, the exact command, and one
# entry per benchmark line (name, iterations, ns/op, B/op, allocs/op).
# Curated BENCH_*.json files add fixture descriptions and analysis notes
# on top of a capture by hand.
set -euo pipefail
cd "$(dirname "$0")/.."

[ $# -ge 2 ] || { echo "usage: $0 <bench-regexp> <package> [out.json]" >&2; exit 2; }
bench="$1"
pkg="$2"
out="${3:-}"

command="go test -run=NONE -bench='$bench' -benchmem $pkg"

raw="$(go test -run=NONE -bench="$bench" -benchmem "$pkg")"

host_json="$(go run ./scripts/benchhost 2>/dev/null || true)"
if [ -z "$host_json" ]; then
    # Fallback: assemble the host block without the helper binary.
    cpu_model="$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"
    host_json=$(printf '{"goos": "%s", "goarch": "%s", "cpu": "%s", "num_cpu": %s, "gomaxprocs": %s}' \
        "$(go env GOOS)" "$(go env GOARCH)" "$cpu_model" \
        "$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" \
        "${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}")
fi

results="$(printf '%s\n' "$raw" | awk '
    /^Benchmark/ {
        name=$1; iters=$2; ns=$3
        bytes="null"; allocs="null"
        for (i=4; i<=NF; i++) {
            if ($(i)=="B/op")      bytes=$(i-1)
            if ($(i)=="allocs/op") allocs=$(i-1)
        }
        printf "%s{\"benchmark\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, iters, ns, bytes, allocs
        sep=",\n    "
    }
')"

json=$(cat <<EOF
{
  "date": "$(date -u +%F)",
  "host": $host_json,
  "command": "$command",
  "results": [
    $results
  ]
}
EOF
)

if [ -n "$out" ]; then
    printf '%s\n' "$json" > "$out"
    echo "record-bench: wrote $out" >&2
else
    printf '%s\n' "$json"
fi
