// Package surfos is a metasurface operating system for programmable radio
// environments — a Go implementation of the system envisioned in "SurfOS:
// Towards an Operating System for Programmable Radio Environments"
// (HotNets '24).
//
// SurfOS manages heterogeneous metasurface hardware behind three
// abstraction layers:
//
//   - Hardware manager (NewHardware, Deploy): drivers expose unified
//     configuration primitives and machine-readable specs for every
//     supported surface design (the paper's Table 1 catalog).
//   - Surface orchestrator (NewOrchestrator): environment-wide service
//     APIs — EnhanceLink, OptimizeCoverage, EnableSensing, InitPowering,
//     SecureLink — each creating a schedulable task; the orchestrator
//     multiplexes tasks over time/frequency/space slices and jointly
//     optimizes shared configurations.
//   - Service broker (NewBroker): translates natural-language user demands
//     into service calls and dispatches them.
//
// The package also exposes the substrates the control plane is built on: a
// ray-traced wireless channel simulator (rfsim), an AoA-based localization
// stack (sensing), and gradient/stochastic configuration optimizers
// (optimize).
//
// Quick start:
//
//	apt := surfos.NewApartment()
//	hw := surfos.NewHardware()
//	drv, _ := surfos.Deploy(hw, "s0", surfos.ModelNRSurface,
//	    apt.Mounts[surfos.MountEastWall], 32, 32)
//	hw.AddAP(&surfos.AccessPoint{ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
//	    Budget: surfos.DefaultBudget(), Antennas: 16})
//	ctx := context.Background()
//	orch, _ := surfos.NewOrchestrator(apt.Scene, hw, surfos.Options{})
//	task, _ := orch.EnhanceLink(ctx, surfos.LinkGoal{
//	    Endpoint: "laptop", Pos: surfos.V(2.5, 5.5, 1.2)}, 1)
//	orch.Reconcile(ctx)
//	task, _ = orch.Task(task.ID) // accessors return snapshots; re-fetch
//	fmt.Println(task.Result.Metric, "dB") // achieved SNR
//
// All service and planning entry points take a context.Context; canceling
// it stops in-flight optimization early and returns the best configuration
// found so far (see internal/optimize). Channel evaluation is memoized and
// parallelized by the shared engine (internal/engine).
package surfos

import (
	"context"
	"fmt"

	"surfos/internal/broker"
	"surfos/internal/deploy"
	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/monitor"
	"surfos/internal/orchestrator"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

// Geometry and scene types.
type (
	// Vec3 is a 3D point or direction in meters.
	Vec3 = geom.Vec3
	// Scene is a 3D environment of material walls and named regions.
	Scene = scene.Scene
	// Apartment is the two-room reference environment from the paper's §4.
	Apartment = scene.Apartment
	// Office is the open-plan office reference environment.
	Office = scene.Office
	// RoomStrip is the multi-room reference environment: N isolated rooms
	// in a row, one interference domain each.
	RoomStrip = scene.RoomStrip
	// MountSpot is a pre-determined surface deployment location.
	MountSpot = scene.MountSpot
	// Region is a named volume services can target.
	Region = scene.Region
)

// Surface and hardware types.
type (
	// Surface is one placed metasurface panel.
	Surface = surface.Surface
	// Config is a per-element array of signal property alteration values.
	Config = surface.Config
	// Layout is a surface's element grid.
	Layout = surface.Layout
	// Driver wraps a surface with its hardware design's constraints.
	Driver = driver.Driver
	// Spec is a hardware design's machine-readable specification.
	Spec = driver.Spec
	// Hardware is the hardware manager: the device/AP/sensor inventory.
	Hardware = hwmgr.Manager
	// AccessPoint is managed non-surface radio infrastructure.
	AccessPoint = hwmgr.AccessPoint
	// Sensor is an external measurement device.
	Sensor = hwmgr.Sensor
	// FaultModel injects deterministic hardware faults into one driver:
	// stuck elements, controller death, probabilistic or slow control
	// writes. Attach with Driver.SetFaults.
	FaultModel = driver.FaultModel
	// DeviceHealth is one device's health snapshot from the hardware
	// manager's heartbeat loop.
	DeviceHealth = hwmgr.DeviceHealth
	// HealthState classifies a device as healthy, degraded, or dead.
	HealthState = hwmgr.HealthState
)

// Control plane types.
type (
	// Orchestrator is the central control plane.
	Orchestrator = orchestrator.Orchestrator
	// Options tunes the orchestrator.
	Options = orchestrator.Options
	// MultiplexPolicy selects how same-band tasks share hardware.
	MultiplexPolicy = orchestrator.MultiplexPolicy
	// Task is a scheduled service request (akin to an OS process).
	Task = orchestrator.Task
	// TaskState is a task's scheduling state.
	TaskState = orchestrator.TaskState
	// LinkGoal parameterizes EnhanceLink.
	LinkGoal = orchestrator.LinkGoal
	// CoverageGoal parameterizes OptimizeCoverage.
	CoverageGoal = orchestrator.CoverageGoal
	// SensingGoal parameterizes EnableSensing.
	SensingGoal = orchestrator.SensingGoal
	// PowerGoal parameterizes InitPowering.
	PowerGoal = orchestrator.PowerGoal
	// SecurityGoal parameterizes SecureLink.
	SecurityGoal = orchestrator.SecurityGoal
	// Broker is the service broker daemon.
	Broker = broker.Broker
	// Translator converts natural-language demands to service calls.
	Translator = broker.Translator
	// Inventory is the broker's endpoint/room knowledge base.
	Inventory = broker.Inventory
	// Call is a rendered service invocation.
	Call = broker.Call
	// LinkBudget converts channel gains into SNR and capacity.
	LinkBudget = rfsim.LinkBudget
	// PlacementRequest describes a deployment planning problem (§5
	// deployment automation).
	PlacementRequest = deploy.Request
	// Placement is one evaluated candidate mount.
	Placement = deploy.Candidate
	// Monitor is the network monitoring/diagnosis service.
	Monitor = monitor.Monitor
	// Expectation is a predicted endpoint SNR the monitor checks reports
	// against.
	Expectation = monitor.Expectation
	// Finding is one diagnosis result.
	Finding = monitor.Finding
	// TelemetryBus fans endpoint reports out to subscribers.
	TelemetryBus = telemetry.Bus
	// Report is one endpoint feedback sample.
	Report = telemetry.Report
	// TaskEventBus fans task lifecycle events out to subscribers.
	TaskEventBus = telemetry.EventBus
	// TaskEvent is one task lifecycle transition.
	TaskEvent = telemetry.TaskEvent
	// Service is the pluggable per-service module the orchestrator's
	// scheduler core consumes; register implementations with
	// RegisterService to extend SurfOS with new service kinds.
	Service = orchestrator.Service
	// ServiceKind identifies a registered service module.
	ServiceKind = orchestrator.ServiceKind
	// Plan is one access point's deployed scheduling decision.
	Plan = orchestrator.Plan
	// TenantQuota bounds one tenant's admission (hard cap + fair-share
	// weight).
	TenantQuota = orchestrator.TenantQuota
	// TenantStat is one tenant's admission bookkeeping.
	TenantStat = orchestrator.TenantStat
	// ShardStat is one interference-domain shard's load snapshot.
	ShardStat = orchestrator.ShardStat
	// MoveResult reports what a MoveTask did (handoff bookkeeping).
	MoveResult = orchestrator.MoveResult
	// Governor rate-limits incremental re-plans per interference domain
	// (token bucket + max-staleness forcing).
	Governor = orchestrator.Governor
	// GovernorOptions tunes a replan governor.
	GovernorOptions = orchestrator.GovernorOptions
	// GovernorStats is a governor's observable state.
	GovernorStats = orchestrator.GovernorStats
	// Engine is the shared channel-evaluation engine: a memoized ray-trace
	// cache plus a worker pool for grid-shaped evaluation.
	Engine = engine.Engine
	// EngineOptions tunes an Engine.
	EngineOptions = engine.Options
)

// Diagnosis verdicts.
const (
	VerdictHealthy         = monitor.Healthy
	VerdictEndpointBlocked = monitor.EndpointBlocked
	VerdictDeviceDegraded  = monitor.DeviceDegraded
	VerdictStale           = monitor.Stale
	VerdictDeviceDead      = monitor.DeviceDead
)

// Device health states.
const (
	HealthHealthy  = hwmgr.Healthy
	HealthDegraded = hwmgr.Degraded
	HealthDead     = hwmgr.Dead
)

// Catalog model names (the paper's Table 1).
const (
	ModelLAIA        = driver.ModelLAIA
	ModelRFocus      = driver.ModelRFocus
	ModelLLAMA       = driver.ModelLLAMA
	ModelLAVA        = driver.ModelLAVA
	ModelScatterMIMO = driver.ModelScatterMIMO
	ModelRFlens      = driver.ModelRFlens
	ModelDiffract    = driver.ModelDiffract
	ModelScrolls     = driver.ModelScrolls
	ModelMMWall      = driver.ModelMMWall
	ModelNRSurface   = driver.ModelNRSurface
	ModelPMSat       = driver.ModelPMSat
	ModelMilliMirror = driver.ModelMilliMirror
	ModelAutoMS      = driver.ModelAutoMS
)

// Multiplexing policies.
const (
	PolicyAuto  = orchestrator.PolicyAuto
	PolicyTDM   = orchestrator.PolicyTDM
	PolicyJoint = orchestrator.PolicyJoint
	PolicySDM   = orchestrator.PolicySDM
)

// Task scheduling states.
const (
	TaskStatePending = orchestrator.TaskPending
	TaskStateRunning = orchestrator.TaskRunning
	TaskStateIdle    = orchestrator.TaskIdle
	TaskStateDone    = orchestrator.TaskDone
	TaskStateFailed  = orchestrator.TaskFailed
)

// Built-in service kinds.
const (
	ServiceLink     = orchestrator.ServiceLink
	ServiceCoverage = orchestrator.ServiceCoverage
	ServiceSensing  = orchestrator.ServiceSensing
	ServicePowering = orchestrator.ServicePowering
	ServiceSecurity = orchestrator.ServiceSecurity
)

// Task lifecycle event states.
const (
	TaskSubmitted = telemetry.TaskSubmitted
	TaskScheduled = telemetry.TaskScheduled
	TaskRunning   = telemetry.TaskRunning
	TaskIdle      = telemetry.TaskIdle
	TaskResumed   = telemetry.TaskResumed
	TaskDone      = telemetry.TaskDone
	TaskFailed    = telemetry.TaskFailed
	// Device health transitions share the task event bus so one --watch
	// stream shows both scheduling and self-healing activity.
	DeviceDegraded  = telemetry.DeviceDegraded
	DeviceDead      = telemetry.DeviceDead
	DeviceRecovered = telemetry.DeviceRecovered
	Replanned       = telemetry.Replanned
)

// Typed orchestrator errors: every failure path wraps one of these
// sentinels, so callers branch with errors.Is instead of string matching.
// They survive the control-protocol wire hop (internal/ctrlproto maps
// them to status codes and back).
var (
	ErrUnknownTask        = orchestrator.ErrUnknownTask
	ErrUnknownService     = orchestrator.ErrUnknownService
	ErrGoalInvalid        = orchestrator.ErrGoalInvalid
	ErrNoAccessPoint      = orchestrator.ErrNoAccessPoint
	ErrNoActiveSurfaces   = orchestrator.ErrNoActiveSurfaces
	ErrNoSchedulableTasks = orchestrator.ErrNoSchedulableTasks
	ErrOptimizeStopped    = orchestrator.ErrOptimizeStopped
	ErrAdmissionRejected  = orchestrator.ErrAdmissionRejected
	// ErrDeviceDead is what every control operation against an unreachable
	// device controller returns; the health tracker maps it straight to
	// HealthDead and the orchestrator re-plans around the device.
	ErrDeviceDead = driver.ErrDeviceDead
)

// RegisterService installs a service module under its kind; the scheduler
// core picks it up with no further wiring ("writing a new service" in the
// README walks through a full example).
func RegisterService(s Service) error { return orchestrator.RegisterService(s) }

// RegisteredServices lists the installed service kinds in order.
func RegisteredServices() []ServiceKind { return orchestrator.RegisteredServices() }

// NewTaskEventBus creates a task lifecycle event bus; attach it to an
// orchestrator with SetEventBus.
func NewTaskEventBus() *TaskEventBus { return telemetry.NewEventBus() }

// NewFaultModel creates a deterministic fault injector; attach it to a
// deployed driver with SetFaults. The zero configuration injects nothing.
func NewFaultModel(seed int64) *FaultModel { return driver.NewFaultModel(seed) }

// Apartment location names.
const (
	MountEastWall    = scene.MountEastWall
	MountNorthWall   = scene.MountNorthWall
	RegionLivingRoom = scene.RegionLivingRoom
	RegionTargetRoom = scene.RegionTargetRoom
)

// Office location names.
const (
	MountMeetingGlass = scene.MountMeetingGlass
	MountWestPillar   = scene.MountWestPillar
	RegionOpenArea    = scene.RegionOpenArea
	RegionMeetingRoom = scene.RegionMeetingRoom
)

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return geom.V(x, y, z) }

// NewApartment builds the paper's two-room reference environment.
func NewApartment() *Apartment { return scene.NewApartment() }

// NewOffice builds the open-plan office reference environment.
func NewOffice() *Office { return scene.NewOffice() }

// NewRoomStrip builds an n-room multi-domain reference environment.
func NewRoomStrip(n int) *RoomStrip { return scene.NewRoomStrip(n) }

// RoomMountEast and RoomMountNorth name room i's wall mounts in a
// RoomStrip; RoomCenter is room i's evaluation point.
func RoomMountEast(i int) string  { return scene.RoomMountEast(i) }
func RoomMountNorth(i int) string { return scene.RoomMountNorth(i) }
func RoomCenter(i int) Vec3       { return scene.RoomCenter(i) }

// DefaultTenant is the tenant legacy (single-tenant) submissions are
// accounted to.
const DefaultTenant = orchestrator.DefaultTenant

// NewHardware creates an empty hardware manager.
func NewHardware() *Hardware { return hwmgr.New() }

// NewOrchestrator builds the central control plane over a scene and
// hardware inventory.
func NewOrchestrator(sc *Scene, hw *Hardware, opts Options) (*Orchestrator, error) {
	return orchestrator.New(sc, hw, opts)
}

// NewGovernor builds a replan governor over an orchestrator. Callers mark
// domains dirty as churn arrives and Poll on their own clock; the governor
// coalesces bursts and bounds plan staleness.
func NewGovernor(o *Orchestrator, opts GovernorOptions) *Governor {
	return orchestrator.NewGovernor(o, opts)
}

// NewTranslator builds the demand translator with the default profile
// library.
func NewTranslator() *Translator { return broker.NewTranslator() }

// NewBroker connects a translator to an orchestrator.
func NewBroker(t *Translator, o *Orchestrator, inv Inventory) (*Broker, error) {
	return broker.New(t, o, inv)
}

// DefaultBudget returns a typical indoor mmWave link budget.
func DefaultBudget() LinkBudget { return rfsim.DefaultBudget() }

// Catalog returns every registered hardware design, ordered as in the
// paper's Table 1.
func Catalog() []Spec { return driver.Catalog() }

// LookupModel returns the catalog spec for a model name.
func LookupModel(model string) (Spec, error) { return driver.Lookup(model) }

// Deploy instantiates a catalog design as a rows×cols panel on a mount and
// registers it with the hardware manager under the given ID. The element
// pitch is λ/2 at the design's band center.
func Deploy(hw *Hardware, id, model string, mount MountSpot, rows, cols int) (*Driver, error) {
	spec, err := driver.Lookup(model)
	if err != nil {
		return nil, err
	}
	return DeploySpec(hw, id, spec, mount, rows, cols)
}

// DeploySpec is Deploy for a custom (e.g. generated) specification.
func DeploySpec(hw *Hardware, id string, spec Spec, mount MountSpot, rows, cols int) (*Driver, error) {
	center := spec.FreqLowHz + (spec.FreqHighHz-spec.FreqLowHz)/2
	pitch := em.Wavelength(center) / 2
	return DeploySpecPitch(hw, id, spec, mount, rows, cols, pitch)
}

// DeploySpecPitch is DeploySpec with an explicit element pitch (sparse
// apertures trade grating lobes for width, useful for sensing surfaces).
func DeploySpecPitch(hw *Hardware, id string, spec Spec, mount MountSpot, rows, cols int, pitch float64) (*Driver, error) {
	if hw == nil {
		return nil, fmt.Errorf("surfos: nil hardware manager")
	}
	panel := mount.Panel(float64(cols)*pitch+0.02, float64(rows)*pitch+0.02)
	mode := spec.OpMode
	if mode == surface.Transflective {
		mode = surface.Reflective
	}
	s, err := surface.New(id, panel, surface.Layout{
		Rows: rows, Cols: cols, PitchU: pitch, PitchV: pitch,
	}, mode, nil)
	if err != nil {
		return nil, err
	}
	d, err := driver.New(spec, s)
	if err != nil {
		return nil, err
	}
	if err := hw.AddSurface(id, mount.Name, d); err != nil {
		return nil, err
	}
	return d, nil
}

// PlanDeployment evaluates candidate mounts for a new surface in parallel
// and returns them ranked by achieved coverage — the paper's §5 deployment
// automation. Canceling ctx aborts unstarted candidates.
func PlanDeployment(ctx context.Context, req PlacementRequest) ([]Placement, error) {
	return deploy.Plan(ctx, req)
}

// NewMonitor creates the monitoring/diagnosis service.
func NewMonitor() *Monitor { return monitor.New() }

// NewEngine creates a private channel-evaluation engine (most callers
// should share DefaultEngine instead, maximizing trace-cache reuse).
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// DefaultEngine returns the process-wide shared engine.
func DefaultEngine() *Engine { return engine.Default() }

// NewTelemetryBus creates an endpoint feedback bus.
func NewTelemetryBus() *TelemetryBus { return telemetry.NewBus() }

// GenerateSpec parses a datasheet-style sheet into a hardware spec (the
// driver-generation automation path).
func GenerateSpec(sheet string) (Spec, error) { return broker.GenerateSpec(sheet) }

// GenerateDriverSource renders Go registration source for a spec.
func GenerateDriverSource(spec Spec) (string, error) { return broker.GenerateDriverSource(spec) }
