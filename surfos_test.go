package surfos_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"surfos"
)

// buildSystem assembles the reference environment through the public API
// only.
func buildSystem(t *testing.T) (*surfos.Apartment, *surfos.Hardware, *surfos.Orchestrator) {
	t.Helper()
	apt := surfos.NewApartment()
	hw := surfos.NewHardware()
	if _, err := surfos.Deploy(hw, "east0", surfos.ModelNRSurface,
		apt.Mounts[surfos.MountEastWall], 16, 16); err != nil {
		t.Fatal(err)
	}
	if err := hw.AddAP(&surfos.AccessPoint{
		ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget: surfos.DefaultBudget(), Antennas: 6,
	}); err != nil {
		t.Fatal(err)
	}
	orch, err := surfos.NewOrchestrator(apt.Scene, hw, surfos.Options{
		OptIters: 30, GridStep: 1.5, SensingGridStep: 2.5,
		SensingBins: 11, SensingSubcarriers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return apt, hw, orch
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	_, hw, orch := buildSystem(t)

	task, err := orch.EnhanceLink(context.Background(), surfos.LinkGoal{
		Endpoint: "laptop", Pos: surfos.V(2.5, 5.5, 1.2), MinSNRdB: 0,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := orch.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := orch.Task(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result == nil || got.Result.MetricName != "snr_db" {
		t.Fatalf("result: %+v", got.Result)
	}
	// The device received a configuration.
	dev, err := hw.Surface("east0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := dev.Drv.Active(); !ok {
		t.Error("no active configuration on the deployed surface")
	}
}

func TestPublicAPICatalog(t *testing.T) {
	cat := surfos.Catalog()
	if len(cat) != 13 {
		t.Fatalf("catalog: %d designs", len(cat))
	}
	spec, err := surfos.LookupModel(surfos.ModelMMWall)
	if err != nil || spec.Model != surfos.ModelMMWall {
		t.Fatalf("lookup: %+v %v", spec, err)
	}
	if _, err := surfos.LookupModel("no-such-surface"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestPublicAPIBrokerFlow(t *testing.T) {
	_, _, orch := buildSystem(t)
	tr := surfos.NewTranslator()
	br, err := surfos.NewBroker(tr, orch, surfos.Inventory{
		Devices:     map[string]surfos.Vec3{"tv": surfos.V(1.5, 6.5, 1.5)},
		RoomRegions: map[string]string{"room_id": surfos.RegionTargetRoom},
	})
	if err != nil {
		t.Fatal(err)
	}
	calls, tasks, err := br.HandleDemand(context.Background(), "please stream a movie on the tv")
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || len(tasks) != 1 {
		t.Fatalf("calls=%v tasks=%v", calls, tasks)
	}
	if !strings.Contains(calls[0].String(), `enhance_link("tv"`) {
		t.Errorf("call: %s", calls[0])
	}
}

func TestPublicAPISpecGeneration(t *testing.T) {
	spec, err := surfos.GenerateSpec("model: X9\nband: 5-5.9 GHz\ncontrol: phase\nmode: reflective\ncost_per_element: 1.0")
	if err != nil {
		t.Fatal(err)
	}
	src, err := surfos.GenerateDriverSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "RegisterX9") {
		t.Errorf("generated source:\n%s", src)
	}
	// Generated specs deploy like catalog specs.
	apt := surfos.NewApartment()
	hw := surfos.NewHardware()
	if _, err := surfos.DeploySpec(hw, "gen0", spec, apt.Mounts[surfos.MountEastWall], 8, 8); err != nil {
		t.Fatal(err)
	}
	if got := len(hw.Surfaces()); got != 1 {
		t.Fatalf("surfaces: %d", got)
	}
}

func TestPublicAPIDeploymentPlanning(t *testing.T) {
	apt := surfos.NewApartment()
	spec, err := surfos.LookupModel(surfos.ModelNRSurface)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := surfos.PlanDeployment(context.Background(), surfos.PlacementRequest{
		Scene:  apt.Scene,
		AP:     apt.AP,
		Budget: surfos.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 5, NoiseFigureDB: 7, BandwidthHz: 400e6},
		Region: surfos.RegionTargetRoom,
		Spec:   spec,
		Rows:   12, Cols: 12,
		Mounts: []surfos.MountSpot{
			apt.Mounts[surfos.MountEastWall],
			apt.Mounts[surfos.MountNorthWall],
		},
		GridStep: 1.5, OptIters: 25, BeamAP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("candidates: %d", len(cands))
	}
	if cands[0].Mount.Name != surfos.MountEastWall {
		t.Errorf("expected the AP-visible east mount to win: %+v", cands[0])
	}
}

func TestPublicAPIMonitoring(t *testing.T) {
	mon := surfos.NewMonitor()
	mon.Expect(surfos.Expectation{DeviceID: "d", EndpointID: "e", SNRdB: 20})
	bus := surfos.NewTelemetryBus()
	stop := mon.Run(context.Background(), bus)
	now := time.Now()
	for i := 0; i < 5; i++ {
		bus.Publish(surfos.Report{DeviceID: "d", EndpointID: "e", SNRdB: 2, Time: now})
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		fs := mon.Problems(now)
		if len(fs) == 1 && fs[0].Verdict == surfos.VerdictEndpointBlocked {
			break
		}
		if time.Now().After(deadline) {
			stop()
			t.Fatalf("diagnosis never fired: %+v", fs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
}

func TestPublicAPIOfficeEnvironment(t *testing.T) {
	off := surfos.NewOffice()
	spec, err := surfos.LookupModel(surfos.ModelNRSurface)
	if err != nil {
		t.Fatal(err)
	}
	// Planning for the glass-walled meeting room must pick the in-room
	// glass mount over the open-area pillar (which cannot see the room).
	cands, err := surfos.PlanDeployment(context.Background(), surfos.PlacementRequest{
		Scene:  off.Scene,
		AP:     off.AP,
		Budget: surfos.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 5, NoiseFigureDB: 7, BandwidthHz: 400e6},
		Region: surfos.RegionMeetingRoom,
		Spec:   spec,
		Rows:   12, Cols: 12,
		Mounts: []surfos.MountSpot{
			off.Mounts[surfos.MountMeetingGlass],
			off.Mounts[surfos.MountWestPillar],
		},
		GridStep: 1.0, OptIters: 30, BeamAP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Mount.Name != surfos.MountMeetingGlass {
		t.Errorf("expected the glass mount to win for the meeting room: %+v", cands)
	}

	// The full control plane runs in the office too.
	hw := surfos.NewHardware()
	if _, err := surfos.Deploy(hw, "glass0", surfos.ModelNRSurface,
		off.Mounts[surfos.MountMeetingGlass], 16, 16); err != nil {
		t.Fatal(err)
	}
	if err := hw.AddAP(&surfos.AccessPoint{ID: "ap0", Pos: off.AP, FreqHz: 24e9,
		Budget: surfos.DefaultBudget(), Antennas: 6}); err != nil {
		t.Fatal(err)
	}
	orch, err := surfos.NewOrchestrator(off.Scene, hw, surfos.Options{OptIters: 30, GridStep: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	task, err := orch.OptimizeCoverage(context.Background(), surfos.CoverageGoal{Region: surfos.RegionMeetingRoom}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := orch.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, _ := orch.Task(task.ID)
	if got.Result == nil || got.Result.MetricName != "median_snr_db" {
		t.Fatalf("office coverage task: %+v (err %v)", got.Result, got.Err)
	}
}
